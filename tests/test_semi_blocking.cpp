// Semi-blocking (asynchronous) checkpointing — the paper's §4.2 future
// work, implemented: the application overlaps checkpoint transfer and
// comparison instead of stalling for them.
#include <gtest/gtest.h>

#include "acr/runtime.h"
#include "acr/stats.h"
#include "apps/jacobi3d.h"
#include "checksum/fletcher.h"

namespace acr {
namespace {

apps::Jacobi3DConfig app_cfg() {
  apps::Jacobi3DConfig cfg;
  cfg.tasks_x = cfg.tasks_y = cfg.tasks_z = 2;
  cfg.block_x = cfg.block_y = cfg.block_z = 8;  // bigger checkpoints:
  cfg.iterations = 40;                          // transfer time matters
  cfg.slots_per_node = 2;
  cfg.seconds_per_point = 2e-6;
  return cfg;
}

AcrConfig acr_cfg(bool semi_blocking) {
  AcrConfig cfg;
  cfg.checkpoint_interval = 0.002;
  cfg.heartbeat_period = 0.0005;
  cfg.heartbeat_timeout = 0.002;
  cfg.semi_blocking = semi_blocking;
  // Slow the modelled compare so the overlap is measurable.
  return cfg;
}

RunSummary run(bool semi_blocking,
               std::function<void(AcrRuntime&)> tweak = {}) {
  apps::Jacobi3DConfig j = app_cfg();
  rt::ClusterConfig cc;
  cc.nodes_per_replica = j.nodes_needed();
  cc.spare_nodes = 2;
  cc.net.compare_bandwidth = 5.0e6;  // exaggerated compare cost
  cc.net.link_bandwidth = 20.0e6;    // exaggerated transfer cost
  AcrRuntime runtime(acr_cfg(semi_blocking), cc);
  runtime.set_task_factory(j.factory());
  runtime.setup();
  if (tweak) tweak(runtime);
  RunSummary s = runtime.run(100.0);
  return s;
}

TEST(SemiBlocking, OverlapsComparisonWithExecution) {
  RunSummary blocking = run(false);
  RunSummary overlapped = run(true);
  ASSERT_TRUE(blocking.complete);
  ASSERT_TRUE(overlapped.complete);
  // Same checkpoints taken, but the forward path no longer pays the
  // transfer + comparison stall: measurably faster end to end.
  EXPECT_GT(overlapped.checkpoints, 0u);
  EXPECT_LT(overlapped.finish_time, blocking.finish_time * 0.95)
      << "blocking " << blocking.finish_time << " vs overlapped "
      << overlapped.finish_time;
  EXPECT_EQ(overlapped.sdc_detected, 0u);
}

TEST(SemiBlocking, StillDetectsSdc) {
  RunSummary s = run(true, [](AcrRuntime& runtime) {
    runtime.engine().schedule_at(0.003, [&runtime] {
      auto& task = static_cast<apps::Jacobi3DTask&>(
          runtime.cluster().node_at(0, 1).task(0));
      task.value_at(2, 2, 2) += 5.0;
      runtime.cluster().trace().record(runtime.engine().now(),
                                       rt::TraceKind::SdcInjected, 0, 1);
    });
  });
  ASSERT_TRUE(s.complete);
  EXPECT_GE(s.sdc_detected, 1u);
}

TEST(SemiBlocking, SurvivesHardFailure) {
  // Kill well after the first verified checkpoint (commits land late here:
  // the exaggerated transfer/compare costs stretch the pipeline).
  RunSummary s = run(true, [](AcrRuntime& runtime) {
    runtime.engine().schedule_at(0.012, [&runtime] {
      runtime.cluster().trace().record(
          runtime.engine().now(), rt::TraceKind::HardFailureInjected, 1, 2);
      runtime.cluster().kill_role(1, 2);
    });
  });
  ASSERT_TRUE(s.complete);
  EXPECT_EQ(s.recoveries, 1u);
}

TEST(SemiBlocking, FinalStateMatchesBlockingRun) {
  auto digest = [](bool semi) {
    apps::Jacobi3DConfig j = app_cfg();
    rt::ClusterConfig cc;
    cc.nodes_per_replica = j.nodes_needed();
    cc.spare_nodes = 2;
    AcrRuntime runtime(acr_cfg(semi), cc);
    runtime.set_task_factory(j.factory());
    runtime.setup();
    RunSummary s = runtime.run(100.0);
    EXPECT_TRUE(s.complete);
    runtime.engine().run_until(s.finish_time + 0.05);
    checksum::Fletcher64 f;
    for (int i = 0; i < runtime.cluster().nodes_per_replica(); ++i)
      f.append(runtime.cluster().node_at(0, i).pack_state().bytes());
    return f.digest();
  };
  EXPECT_EQ(digest(false), digest(true));
}

}  // namespace
}  // namespace acr
