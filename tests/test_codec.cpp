// Unit and property tests for the staged checkpoint codec pipeline
// (ckpt/codec.h): the LZ block codec, frame encode/decode, thread-count
// invariance, vault v2 delta blobs, and the durable tier's delta chains.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "buf/buffer.h"
#include "checksum/kernels.h"
#include "ckpt/codec.h"
#include "ckpt/tier.h"
#include "ckpt/vault.h"
#include "common/rng.h"
#include "parallel/pool.h"

namespace acr::ckpt {
namespace {

std::vector<std::byte> random_bytes(std::size_t n, std::uint64_t seed) {
  Pcg32 rng(seed, 11);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = static_cast<std::byte>(rng.bounded(256));
  return out;
}

/// Lattice-flavoured data: long runs of repeated doubles with sparse noise,
/// the shape checkpoint images of iterative codes actually have.
std::vector<std::byte> lattice_bytes(std::size_t n, std::uint64_t seed) {
  Pcg32 rng(seed, 13);
  std::vector<double> vals(n / sizeof(double) + 1, 1.0);
  for (std::size_t i = 0; i < vals.size() / 50; ++i)
    vals[rng.next64() % vals.size()] = rng.uniform();
  std::vector<std::byte> out(n);
  std::memcpy(out.data(), vals.data(), n);
  return out;
}

CodecConfig config(bool delta, bool compress) {
  CodecConfig c;
  c.delta = delta ? DeltaMode::On : DeltaMode::Off;
  c.compress = compress ? CompressMode::Lz : CompressMode::None;
  return c;
}

// ---------------------------------------------------------------------------
// LZ block codec.
// ---------------------------------------------------------------------------

TEST(LzBlock, RoundTripsRandomData) {
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                        std::size_t{4096}, std::size_t{70000}}) {
    std::vector<std::byte> in = random_bytes(n, 42 + n);
    std::vector<std::byte> packed = lz_compress_block(in);
    EXPECT_EQ(lz_decompress_block(packed, n), in) << "n=" << n;
  }
}

TEST(LzBlock, CompressesRunsAndLattices) {
  std::vector<std::byte> zeros(1 << 16, std::byte{0});
  std::vector<std::byte> packed = lz_compress_block(zeros);
  EXPECT_LT(packed.size(), zeros.size() / 20);
  EXPECT_EQ(lz_decompress_block(packed, zeros.size()), zeros);

  std::vector<std::byte> lat = lattice_bytes(1 << 17, 7);
  std::vector<std::byte> lp = lz_compress_block(lat);
  EXPECT_LT(lp.size(), lat.size());
  EXPECT_EQ(lz_decompress_block(lp, lat.size()), lat);
}

TEST(LzBlock, IncompressibleDataStillRoundTrips) {
  // Worst case: random bytes grow by the control-byte overhead (1/8), and
  // the codec's per-chunk raw fallback is what keeps frames bounded.
  std::vector<std::byte> in = random_bytes(1 << 15, 99);
  std::vector<std::byte> packed = lz_compress_block(in);
  EXPECT_LE(packed.size(), in.size() + in.size() / 8 + 8);
  EXPECT_EQ(lz_decompress_block(packed, in.size()), in);
}

TEST(LzBlock, TruncatedInputThrows) {
  std::vector<std::byte> in = lattice_bytes(4096, 3);
  std::vector<std::byte> packed = lz_compress_block(in);
  for (std::size_t cut : {std::size_t{0}, std::size_t{1}, packed.size() / 2,
                          packed.size() - 1}) {
    std::vector<std::byte> trunc(packed.begin(),
                                 packed.begin() + static_cast<long>(cut));
    EXPECT_THROW(lz_decompress_block(trunc, in.size()), pup::StreamError)
        << "cut=" << cut;
  }
}

TEST(LzBlock, TrailingGarbageThrows) {
  std::vector<std::byte> in = lattice_bytes(4096, 4);
  std::vector<std::byte> packed = lz_compress_block(in);
  packed.push_back(std::byte{0x5A});
  EXPECT_THROW(lz_decompress_block(packed, in.size()), pup::StreamError);
}

TEST(LzBlock, BadMatchTokenThrows) {
  // Hand-build a stream whose first item is a match: no prior output makes
  // any offset invalid.
  std::vector<std::byte> bad = {std::byte{0x01},   // ctrl: item 0 is a match
                                std::byte{0x01}, std::byte{0x00},  // offset 1
                                std::byte{0x00}};  // length 4
  EXPECT_THROW(lz_decompress_block(bad, 16), pup::StreamError);
}

TEST(LzBlock, AdversarialRandomStreamsNeverCrash) {
  // Decoding random bytes must either produce out_len bytes or throw —
  // never read out of bounds (ASan-checked in the sanitizer CI job).
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    std::vector<std::byte> junk = random_bytes(64 + seed % 128, 1000 + seed);
    try {
      std::vector<std::byte> out = lz_decompress_block(junk, 512);
      EXPECT_EQ(out.size(), 512u);
    } catch (const pup::StreamError&) {
      // expected for most seeds
    }
  }
}

// ---------------------------------------------------------------------------
// Frame encode/decode.
// ---------------------------------------------------------------------------

/// An image spanning several 256 KiB chunks, with a ragged tail.
buf::Buffer test_image(std::uint64_t seed, std::size_t chunks = 3) {
  return buf::Buffer::wrap(
      lattice_bytes(chunks * checksum::kDigestChunk + 1234, seed));
}

TEST(CodecFrame, FullRawFrameAliasesTheImage) {
  buf::Buffer img = test_image(1);
  CodecPipeline pipe(config(false, false));
  CodecFrame f = pipe.encode_full(img);
  EXPECT_TRUE(f.map.all_present());
  EXPECT_EQ(f.encoding, 0);
  EXPECT_TRUE(f.payload.aliases(img)) << "full raw frame must be zero-copy";
  EXPECT_EQ(f.raw_payload_bytes, img.size());
  buf::Buffer back = CodecPipeline::decode(f, {});
  EXPECT_TRUE(back.content_equals(img));
}

TEST(CodecFrame, DeltaCarriesOnlyDirtyChunks) {
  buf::Buffer base = test_image(2, 4);
  std::vector<std::byte> next(base.bytes().begin(), base.bytes().end());
  // Dirty exactly chunk 1 (one byte) and the ragged tail chunk.
  next[checksum::kDigestChunk + 17] ^= std::byte{0xFF};
  next[next.size() - 1] ^= std::byte{0x01};
  buf::Buffer img = buf::Buffer::wrap(std::move(next));

  std::vector<std::uint32_t> base_dig = CodecPipeline::digests(base.bytes());
  std::vector<std::uint32_t> dig = CodecPipeline::digests(img.bytes());
  CodecPipeline pipe(config(true, false));
  CodecFrame f = pipe.encode(img, dig, &base_dig, base.size());

  ASSERT_EQ(f.map.chunks(), 5u);
  EXPECT_EQ(f.map.present_chunks(), 2u);
  EXPECT_EQ(f.map.present[1], 1);
  EXPECT_EQ(f.map.present[4], 1);
  EXPECT_LT(f.encoded_bytes(), img.size() / 2);

  buf::Buffer back = CodecPipeline::decode(f, base.bytes());
  EXPECT_TRUE(back.content_equals(img));
}

TEST(CodecFrame, DeltaWithNoChangesShipsNoChunks) {
  buf::Buffer img = test_image(3);
  std::vector<std::uint32_t> dig = CodecPipeline::digests(img.bytes());
  CodecPipeline pipe(config(true, false));
  CodecFrame f = pipe.encode(img, dig, &dig, img.size());
  EXPECT_EQ(f.map.present_chunks(), 0u);
  EXPECT_EQ(f.payload.size(), 0u);
  buf::Buffer back = CodecPipeline::decode(f, img.bytes());
  EXPECT_TRUE(back.content_equals(img));
}

TEST(CodecFrame, MismatchedBaseFallsBackToFullMap) {
  buf::Buffer img = test_image(4);
  std::vector<std::uint32_t> dig = CodecPipeline::digests(img.bytes());
  std::vector<std::uint32_t> short_dig(dig.begin(), dig.end() - 1);
  CodecPipeline pipe(config(true, false));
  // Base of a different size: every chunk must ship.
  CodecFrame f = pipe.encode(img, dig, &short_dig, img.size() - 5);
  EXPECT_TRUE(f.map.all_present());
}

TEST(CodecFrame, CompressedFrameRoundTrips) {
  buf::Buffer img = test_image(5);
  CodecPipeline pipe(config(false, true));
  CodecFrame f = pipe.encode_full(img);
  EXPECT_EQ(f.encoding, 1);
  EXPECT_LT(f.payload.size(), img.size());
  buf::Buffer back = CodecPipeline::decode(f, {});
  EXPECT_TRUE(back.content_equals(img));
}

TEST(CodecFrame, DeltaPlusCompressRoundTrips) {
  buf::Buffer base = test_image(6, 4);
  std::vector<std::byte> next(base.bytes().begin(), base.bytes().end());
  for (std::size_t i = 0; i < checksum::kDigestChunk / 2; i += 64)
    next[2 * checksum::kDigestChunk + i] ^= std::byte{0x3C};
  buf::Buffer img = buf::Buffer::wrap(std::move(next));
  std::vector<std::uint32_t> base_dig = CodecPipeline::digests(base.bytes());
  std::vector<std::uint32_t> dig = CodecPipeline::digests(img.bytes());
  CodecPipeline pipe(config(true, true));
  CodecFrame f = pipe.encode(img, dig, &base_dig, base.size());
  EXPECT_EQ(f.map.present_chunks(), 1u);
  EXPECT_LT(f.encoded_bytes(), checksum::kDigestChunk);
  buf::Buffer back = CodecPipeline::decode(f, base.bytes());
  EXPECT_TRUE(back.content_equals(img));
}

TEST(CodecFrame, DecodeRejectsMalformedFrames) {
  buf::Buffer img = test_image(7, 2);
  CodecPipeline pipe(config(false, true));
  CodecFrame f = pipe.encode_full(img);

  // Truncated payload.
  CodecFrame cut = f;
  cut.payload = f.payload.slice(0, f.payload.size() - 3);
  EXPECT_THROW(CodecPipeline::decode(cut, {}), pup::StreamError);

  // Map/size mismatch.
  CodecFrame bad_map = f;
  bad_map.map.present.push_back(1);
  EXPECT_THROW(CodecPipeline::decode(bad_map, {}), pup::StreamError);

  // Delta frame without its base.
  std::vector<std::uint32_t> dig = CodecPipeline::digests(img.bytes());
  std::vector<std::uint32_t> other = dig;
  other[0] ^= 1;  // chunk 0 clean per the fake base, so it is absent
  CodecPipeline dpipe(config(true, false));
  CodecFrame delta = dpipe.encode(img, dig, &other, img.size());
  ASSERT_FALSE(delta.map.all_present());
  EXPECT_THROW(CodecPipeline::decode(delta, {}), pup::StreamError);
}

TEST(CodecFrame, EncodeIsThreadCountInvariant) {
  buf::Buffer base = test_image(8, 6);
  std::vector<std::byte> next(base.bytes().begin(), base.bytes().end());
  for (std::size_t i = 0; i < next.size(); i += 100000)
    next[i] ^= std::byte{0x77};
  buf::Buffer img = buf::Buffer::wrap(std::move(next));
  std::vector<std::uint32_t> base_dig = CodecPipeline::digests(base.bytes());

  int before = parallel::global_threads();
  std::vector<std::byte> reference;
  for (int threads : {0, 1, 3, 7}) {
    parallel::set_global_threads(threads);
    std::vector<std::uint32_t> dig = CodecPipeline::digests(img.bytes());
    CodecPipeline pipe(config(true, true));
    CodecFrame f = pipe.encode(img, dig, &base_dig, base.size());
    std::vector<std::byte> bytes(f.payload.bytes().begin(),
                                 f.payload.bytes().end());
    if (threads == 0)
      reference = std::move(bytes);
    else
      EXPECT_EQ(bytes, reference) << "threads=" << threads;
  }
  parallel::set_global_threads(before);
}

// ---------------------------------------------------------------------------
// Vault v2 delta blobs.
// ---------------------------------------------------------------------------

TEST(VaultV2, DeltaBlobRoundTrips) {
  buf::Buffer base = test_image(9, 3);
  std::vector<std::byte> next(base.bytes().begin(), base.bytes().end());
  next[10] ^= std::byte{0x42};
  buf::Buffer img = buf::Buffer::wrap(std::move(next));
  std::vector<std::uint32_t> base_dig = CodecPipeline::digests(base.bytes());
  std::vector<std::uint32_t> dig = CodecPipeline::digests(img.bytes());
  CodecPipeline pipe(config(true, true));

  DeltaBlob blob;
  blob.epoch = 5;
  blob.iteration = 50;
  blob.base_epoch = 4;
  blob.frame = pipe.encode(img, dig, &base_dig, base.size());
  std::vector<std::byte> bytes = encode_delta_image(blob);
  EXPECT_EQ(bytes.size(), encoded_delta_bytes(blob.frame));

  DecodedBlob decoded = decode_any_image(bytes);
  ASSERT_TRUE(decoded.is_delta);
  EXPECT_EQ(decoded.delta.epoch, 5u);
  EXPECT_EQ(decoded.delta.base_epoch, 4u);
  buf::Buffer back = CodecPipeline::decode(decoded.delta.frame, base.bytes());
  EXPECT_TRUE(back.content_equals(img));
}

TEST(VaultV2, DecodeAnyHandlesV1AndRejectsCorruption) {
  StoredImage img;
  img.epoch = 3;
  img.iteration = 30;
  img.image = pup::Checkpoint(test_image(10, 1));
  std::vector<std::byte> v1 = encode_stored_image(img);
  DecodedBlob d = decode_any_image(v1);
  ASSERT_FALSE(d.is_delta);
  EXPECT_EQ(d.full.epoch, 3u);
  EXPECT_TRUE(d.full.image.buffer().content_equals(img.image.buffer()));

  v1[v1.size() / 2] ^= std::byte{0x01};
  EXPECT_THROW(decode_any_image(v1), pup::StreamError);
}

// ---------------------------------------------------------------------------
// Durable-tier delta chains.
// ---------------------------------------------------------------------------

/// Publish epochs 1..k for role (0,0): epoch 1 full, later epochs deltas
/// each dirtying one byte. Returns the final image.
buf::Buffer publish_chain(DurableTier& tier, int k, std::uint64_t seed) {
  CodecPipeline pipe(config(true, false));
  buf::Buffer first = test_image(seed, 2);
  std::vector<std::byte> cur(first.bytes().begin(), first.bytes().end());
  std::vector<std::uint32_t> prev_dig;
  for (int e = 1; e <= k; ++e) {
    buf::Buffer img = buf::Buffer::copy_of(cur);
    std::vector<std::uint32_t> dig = CodecPipeline::digests(img.bytes());
    if (e == 1) {
      StoredImage full;
      full.epoch = 1;
      full.iteration = 10;
      full.image = pup::Checkpoint(img);
      tier.publish(0, 0, full);
    } else {
      DeltaBlob blob;
      blob.epoch = static_cast<std::uint64_t>(e);
      blob.iteration = static_cast<std::uint64_t>(e) * 10;
      blob.base_epoch = static_cast<std::uint64_t>(e - 1);
      blob.frame = pipe.encode(img, dig, &prev_dig, cur.size());
      tier.publish_blob(0, 0, blob.epoch, encode_delta_image(blob),
                        blob.base_epoch);
    }
    prev_dig = std::move(dig);
    cur[static_cast<std::size_t>(e) * 1000] ^= std::byte{0xA5};
  }
  // `cur` was mutated after the last publish; rebuild the published state.
  cur[static_cast<std::size_t>(k) * 1000] ^= std::byte{0xA5};
  return buf::Buffer::copy_of(cur);
}

TEST(TierChain, FetchReconstructsThroughDeltaChain) {
  DurableTier tier(1, 1);
  buf::Buffer expect = publish_chain(tier, 4, 20);
  EXPECT_EQ(tier.delta_publishes(), 3u);
  EXPECT_EQ(tier.chain_length(0, 0, 4), 4u);
  EXPECT_GT(tier.chain_bytes(0, 0, 4), tier.blob_bytes(0, 0, 4));

  std::optional<StoredImage> got = tier.fetch(0, 0, 4);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->epoch, 4u);
  EXPECT_EQ(got->iteration, 40u);
  EXPECT_TRUE(got->image.buffer().content_equals(expect));
}

TEST(TierChain, BrokenChainYieldsNulloptNotGarbage) {
  // A delta blob published into a tier that never saw its base epoch:
  // fetch must fail cleanly (pushing the wave to an older rung), never
  // fabricate an image.
  DurableTier no_base(1, 1);
  CodecPipeline pipe(config(true, true));
  buf::Buffer img = test_image(22, 1);
  DeltaBlob blob;
  blob.epoch = 2;
  blob.base_epoch = 1;
  std::vector<std::uint32_t> dig = CodecPipeline::digests(img.bytes());
  std::vector<std::uint32_t> other = dig;
  other[0] ^= 1;
  blob.frame = pipe.encode(img, dig, &other, img.size());
  no_base.publish_blob(0, 0, 2, encode_delta_image(blob), 1);
  EXPECT_FALSE(no_base.fetch(0, 0, 2).has_value());
  EXPECT_EQ(no_base.chain_bytes(0, 0, 2), 0u);
}

TEST(TierChain, PruneKeepsAncestorsOfLiveDeltas) {
  DurableTier tier(1, 1);
  buf::Buffer expect = publish_chain(tier, 3, 23);
  tier.prune(3);  // would drop epochs 1 and 2 — but 3 needs them
  std::optional<StoredImage> got = tier.fetch(0, 0, 3);
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->image.buffer().content_equals(expect));
}

}  // namespace
}  // namespace acr::ckpt
