// Runtime-layer tests: cluster messaging, role fail-over, pause mechanics,
// app-epoch filtering, node checkpoint pack/restore.
#include <gtest/gtest.h>

#include "pup/checker.h"
#include "rt/cluster.h"

namespace acr::rt {
namespace {

/// Minimal scripted task: counts messages, tracks resumes, pup's a payload.
class ProbeTask final : public Task {
 public:
  explicit ProbeTask(int id) : id_(id) { data_.assign(16, id * 1.0); }

  void on_start() override { ++starts; }
  void on_resume() override { ++resumes; }
  void on_message(const Message& m) override {
    received.push_back(m.tag);
  }
  void pup(pup::Puper& p) override {
    p | iter_;
    p | data_;
  }
  std::uint64_t progress() const override { return iter_; }

  void advance(std::uint64_t to) {
    iter_ = to;
    ctx->report_progress(iter_);
  }
  void mutate() { data_[3] += 1.0; }

  int id_;
  std::uint64_t iter_ = 0;
  std::vector<double> data_;
  int starts = 0;
  int resumes = 0;
  std::vector<int> received;
};

Cluster::TaskFactory probe_factory(int tasks_per_node) {
  return [tasks_per_node](int, int node_index) {
    std::vector<std::unique_ptr<Task>> out;
    for (int s = 0; s < tasks_per_node; ++s)
      out.push_back(std::make_unique<ProbeTask>(node_index * 100 + s));
    return out;
  };
}

struct Fixture {
  Engine engine;
  ClusterConfig cfg;
  std::unique_ptr<Cluster> cluster;

  explicit Fixture(int nodes = 3, int spares = 1, int tasks = 2) {
    cfg.nodes_per_replica = nodes;
    cfg.spare_nodes = spares;
    cluster = std::make_unique<Cluster>(engine, cfg);
    cluster->set_task_factory(probe_factory(tasks));
    cluster->populate();
  }
  ProbeTask& task(int r, int n, int s) {
    return static_cast<ProbeTask&>(cluster->node_at(r, n).task(s));
  }
};

TEST(Cluster, PopulateAssignsRolesAndSpares) {
  Fixture f(3, 2, 2);
  EXPECT_EQ(f.cluster->num_physical_nodes(), 8);
  EXPECT_EQ(f.cluster->spares_remaining(), 2);
  for (int r = 0; r < 2; ++r)
    for (int i = 0; i < 3; ++i) {
      EXPECT_TRUE(f.cluster->role_alive(r, i));
      EXPECT_EQ(f.cluster->node_at(r, i).num_tasks(), 2);
    }
}

TEST(Cluster, StartFiresEveryTaskOnce) {
  Fixture f;
  f.cluster->start_application();
  f.engine.run();
  for (int r = 0; r < 2; ++r)
    for (int i = 0; i < 3; ++i)
      for (int s = 0; s < 2; ++s) EXPECT_EQ(f.task(r, i, s).starts, 1);
}

TEST(Cluster, TaskMessageIsDeliveredWithLatency) {
  Fixture f;
  f.cluster->send_task(0, TaskAddr{0, 0}, TaskAddr{1, 1}, 42, {});
  EXPECT_EQ(f.cluster->in_flight_app_messages(0), 1);
  f.engine.run();
  EXPECT_GT(f.engine.now(), 0.0);
  EXPECT_EQ(f.cluster->in_flight_app_messages(0), 0);
  EXPECT_EQ(f.task(0, 1, 1).received, (std::vector<int>{42}));
  EXPECT_TRUE(f.task(1, 1, 1).received.empty());  // other replica untouched
}

TEST(Cluster, StaleEpochMessagesAreDropped) {
  Fixture f;
  f.cluster->send_task(0, TaskAddr{0, 0}, TaskAddr{1, 0}, 7, {});
  f.cluster->bump_app_epoch(0);  // rollback happened while in flight
  f.engine.run();
  EXPECT_TRUE(f.task(0, 1, 0).received.empty());
}

TEST(Cluster, DeadNodeDropsTraffic) {
  Fixture f;
  f.cluster->kill_role(0, 1);
  EXPECT_FALSE(f.cluster->role_alive(0, 1));
  f.cluster->send_task(0, TaskAddr{0, 0}, TaskAddr{1, 0}, 7, {});
  f.engine.run();
  EXPECT_TRUE(f.task(0, 1, 0).received.empty());
}

TEST(Cluster, GatedNodeDropsTaskTrafficButNotService) {
  Fixture f;
  f.cluster->node_at(0, 1).set_gated(true);
  f.cluster->send_task(0, TaskAddr{0, 0}, TaskAddr{1, 0}, 7, {});
  f.engine.run();
  EXPECT_TRUE(f.task(0, 1, 0).received.empty());
  f.cluster->node_at(0, 1).set_gated(false);
  f.cluster->send_task(0, TaskAddr{0, 0}, TaskAddr{1, 0}, 8, {});
  f.engine.run();
  EXPECT_EQ(f.task(0, 1, 0).received, (std::vector<int>{8}));
}

TEST(Cluster, PromoteSpareTakesOverRole) {
  Fixture f(3, 1, 2);
  f.cluster->kill_role(1, 2);
  Node* fresh = f.cluster->promote_spare(1, 2);
  ASSERT_NE(fresh, nullptr);
  EXPECT_TRUE(f.cluster->role_alive(1, 2));
  EXPECT_EQ(f.cluster->spares_remaining(), 0);
  EXPECT_EQ(fresh->num_tasks(), 2);
  // Traffic to the role reaches the fresh node now.
  f.cluster->send_task(1, TaskAddr{0, 0}, TaskAddr{2, 0}, 9, {});
  f.engine.run();
  EXPECT_EQ(static_cast<ProbeTask&>(fresh->task(0)).received,
            (std::vector<int>{9}));
  EXPECT_EQ(f.cluster->promote_spare(0, 0), nullptr);  // pool exhausted
}

TEST(Node, PackRestoreRoundTripsTaskState) {
  Fixture f;
  Node& node = f.cluster->node_at(0, 0);
  f.task(0, 0, 0).mutate();
  f.task(0, 0, 0).iter_ = 5;
  pup::Checkpoint c = node.pack_state();
  f.task(0, 0, 0).mutate();
  f.task(0, 0, 0).iter_ = 9;
  std::uint64_t inc_before = node.incarnation();
  node.restore_state(c);
  EXPECT_GT(node.incarnation(), inc_before);
  EXPECT_EQ(f.task(0, 0, 0).iter_, 5u);
  EXPECT_EQ(node.task_progress(0), 5u);
  EXPECT_EQ(node.max_local_progress(), 5u);
}

TEST(Node, BuddyNodesPackIdenticalState) {
  Fixture f;
  pup::Checkpoint a = f.cluster->node_at(0, 1).pack_state();
  pup::Checkpoint b = f.cluster->node_at(1, 1).pack_state();
  EXPECT_TRUE(pup::compare_checkpoints(a, b).match);
  // ...and a different node index differs.
  pup::Checkpoint c = f.cluster->node_at(1, 2).pack_state();
  EXPECT_FALSE(pup::compare_checkpoints(a, c).match);
}

TEST(Node, PauseDefersResumeUntilUnpause) {
  Fixture f;
  Node& node = f.cluster->node_at(0, 0);
  node.pause_task(0);
  EXPECT_TRUE(node.task_paused(0));
  f.engine.run();
  EXPECT_EQ(f.task(0, 0, 0).resumes, 0);
  node.unpause_task(0);
  f.engine.run();
  EXPECT_FALSE(node.task_paused(0));
  EXPECT_EQ(f.task(0, 0, 0).resumes, 1);
  // Unpausing an already-running task is a no-op.
  node.unpause_task(0);
  f.engine.run();
  EXPECT_EQ(f.task(0, 0, 0).resumes, 1);
}

TEST(Node, KillInvalidatesScheduledContinuations) {
  Fixture f;
  Node& node = f.cluster->node_at(0, 0);
  ProbeTask& t = f.task(0, 0, 0);
  bool continuation_ran = false;
  t.ctx->after_compute(1.0, [&] { continuation_ran = true; });
  node.kill();
  f.engine.run();
  EXPECT_FALSE(continuation_ran);
}

TEST(Node, RestoreInvalidatesScheduledContinuations) {
  Fixture f;
  Node& node = f.cluster->node_at(0, 0);
  pup::Checkpoint c = node.pack_state();
  bool continuation_ran = false;
  f.task(0, 0, 0).ctx->after_compute(1.0, [&] { continuation_ran = true; });
  node.restore_state(c);
  f.engine.run();
  EXPECT_FALSE(continuation_ran);
}

TEST(Cluster, MapOntoTorusSetsBuddyHops) {
  Engine e;
  ClusterConfig cfg;
  cfg.nodes_per_replica = 256;
  Cluster cluster(e, cfg);
  cluster.map_onto_torus(topo::bgp_partition(512), topo::MappingScheme::Column);
  EXPECT_EQ(cluster.config().buddy_hops, 1);
  cluster.map_onto_torus(topo::bgp_partition(512),
                         topo::MappingScheme::Default);
  EXPECT_EQ(cluster.config().buddy_hops, 4);
}

TEST(Cluster, AppRngIsReplicaIndependent) {
  Fixture f;
  Pcg32 a = f.task(0, 2, 1).ctx->make_app_rng(5);
  Pcg32 b = f.task(1, 2, 1).ctx->make_app_rng(5);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next(), b.next());
  Pcg32 c = f.task(0, 1, 1).ctx->make_app_rng(5);
  bool all_equal = true;
  Pcg32 a2 = f.task(0, 2, 1).ctx->make_app_rng(5);
  for (int i = 0; i < 16; ++i) all_equal &= (a2.next() == c.next());
  EXPECT_FALSE(all_equal);
}

}  // namespace
}  // namespace acr::rt
