// Unit tests for the pluggable checkpoint layer (src/ckpt): the double
// checkpoint Store's promotion state machine (including the edge cases a
// racing verdict/rollback produces), the parity GroupMap, and the XOR
// scheme's chunk/rebuild algebra driven purely through its Hooks — no
// cluster, no clock.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <vector>

#include "checksum/fold.h"
#include "ckpt/group.h"
#include "ckpt/redundancy.h"
#include "ckpt/store.h"
#include "ckpt/vault.h"
#include "common/rng.h"

namespace acr::ckpt {
namespace {

pup::Checkpoint make_image(std::size_t size, std::uint64_t salt) {
  Pcg32 rng(salt, 0xC4u);
  std::vector<std::byte> bytes(size);
  for (auto& b : bytes) b = static_cast<std::byte>(rng.bounded(256));
  return pup::Checkpoint(std::move(bytes));
}

Image make_stored(std::uint64_t epoch, std::uint64_t iteration,
                  std::size_t size, std::uint64_t salt) {
  Image img;
  img.valid = true;
  img.epoch = epoch;
  img.iteration = iteration;
  img.image = make_image(size, salt);
  return img;
}

// ---------------------------------------------------------------------------
// Store: candidate -> verified promotion edge cases.
// ---------------------------------------------------------------------------

TEST(CkptStore, PromoteMovesCandidateToVerified) {
  Store s;
  s.stage_candidate(5, 120, make_image(64, 1));
  EXPECT_TRUE(s.has_candidate());
  EXPECT_FALSE(s.has_verified());
  EXPECT_EQ(s.promote(5), PromoteResult::Promoted);
  EXPECT_TRUE(s.has_verified());
  EXPECT_FALSE(s.has_candidate());
  EXPECT_EQ(s.verified().epoch, 5u);
  EXPECT_EQ(s.verified().iteration, 120u);
}

TEST(CkptStore, DoublePromotionIsRejected) {
  Store s;
  s.stage_candidate(5, 120, make_image(64, 1));
  ASSERT_EQ(s.promote(5), PromoteResult::Promoted);
  // A duplicated commit (at-least-once delivery) finds the slot empty; the
  // verified image must not be disturbed.
  EXPECT_EQ(s.promote(5), PromoteResult::NoCandidate);
  EXPECT_TRUE(s.has_verified());
  EXPECT_EQ(s.verified().epoch, 5u);
}

TEST(CkptStore, PromotionDuringInFlightVerdictOfAnotherEpoch) {
  Store s;
  s.stage_candidate(7, 200, make_image(64, 2));
  // Commit for an older round arrives while epoch 7's verdict is still in
  // flight: neither slot may move.
  EXPECT_EQ(s.promote(6), PromoteResult::EpochMismatch);
  EXPECT_TRUE(s.has_candidate());
  EXPECT_EQ(s.candidate().epoch, 7u);
  EXPECT_FALSE(s.has_verified());
  // The right commit then lands normally.
  EXPECT_EQ(s.promote(7), PromoteResult::Promoted);
  EXPECT_EQ(s.verified().epoch, 7u);
}

TEST(CkptStore, PromoteWithNothingStagedReportsNoCandidate) {
  Store s;
  EXPECT_EQ(s.promote(3), PromoteResult::NoCandidate);
  EXPECT_FALSE(s.has_verified());
}

TEST(CkptStore, RestorableFromCandidateAfterRollback) {
  // A node that never promoted (its commit was lost) but holds a candidate
  // for exactly the rollback epoch: that candidate passed the comparison,
  // so it is the restore source of last resort.
  Store s;
  s.stage_candidate(4, 90, make_image(48, 3));
  const Image* img = s.restorable(4);
  ASSERT_NE(img, nullptr);
  EXPECT_EQ(img->epoch, 4u);
  EXPECT_EQ(img, &s.candidate());
  // A rollback to any other epoch cannot be served.
  EXPECT_EQ(s.restorable(3), nullptr);
  EXPECT_EQ(s.restorable(5), nullptr);
}

TEST(CkptStore, RestorablePrefersVerifiedOverCandidate) {
  Store s;
  s.stage_candidate(4, 90, make_image(48, 4));
  ASSERT_EQ(s.promote(4), PromoteResult::Promoted);
  s.stage_candidate(5, 110, make_image(48, 5));
  EXPECT_EQ(s.restorable(4), &s.verified());
  EXPECT_EQ(s.restorable(5), &s.candidate());
  EXPECT_EQ(s.restorable(6), nullptr);
}

TEST(CkptStore, AdoptVerifiedDiscardsStaleCandidate) {
  Store s;
  s.stage_candidate(9, 300, make_image(32, 6));
  s.adopt_verified(make_stored(8, 250, 32, 7));
  EXPECT_TRUE(s.has_verified());
  EXPECT_EQ(s.verified().epoch, 8u);
  // The candidate predates the state jump and must not survive it.
  EXPECT_FALSE(s.has_candidate());
}

TEST(CkptStore, ResetForgetsEverything) {
  Store s;
  s.stage_candidate(2, 40, make_image(16, 8));
  ASSERT_EQ(s.promote(2), PromoteResult::Promoted);
  s.stage_candidate(3, 60, make_image(16, 9));
  s.reset();
  EXPECT_FALSE(s.has_verified());
  EXPECT_FALSE(s.has_candidate());
}

// ---------------------------------------------------------------------------
// GroupMap.
// ---------------------------------------------------------------------------

TEST(CkptGroupMap, DisabledWhenGroupSizeIsZero) {
  GroupMap g(8, 0);
  EXPECT_FALSE(g.enabled());
}

TEST(CkptGroupMap, EvenSplit) {
  GroupMap g(8, 4);
  ASSERT_TRUE(g.enabled());
  EXPECT_EQ(g.num_groups(), 2);
  EXPECT_EQ(g.group_of(0), 0);
  EXPECT_EQ(g.group_of(3), 0);
  EXPECT_EQ(g.group_of(4), 1);
  EXPECT_EQ(g.group_of(7), 1);
  EXPECT_EQ(g.group_members(5), (std::vector<int>{4, 5, 6, 7}));
  EXPECT_EQ(g.rank_in_group(5), 1);
  EXPECT_EQ(g.group_size_of(5), 4);
}

TEST(CkptGroupMap, TrailingRemainderOfOneMergesIntoPreviousGroup) {
  // 9 nodes in groups of 4: a trailing group of one node would have no
  // parity peers, so it joins the previous group (sizes 4 + 5).
  GroupMap g(9, 4);
  EXPECT_EQ(g.num_groups(), 2);
  EXPECT_EQ(g.group_size_of(0), 4);
  EXPECT_EQ(g.group_size_of(8), 5);
  EXPECT_EQ(g.group_members(8), (std::vector<int>{4, 5, 6, 7, 8}));
  EXPECT_EQ(g.rank_in_group(8), 4);
}

TEST(CkptGroupMap, LargerRemainderStandsAlone) {
  GroupMap g(7, 3);  // groups {0,1,2}, {3,4,5,6} (remainder 1 merged)
  EXPECT_EQ(g.num_groups(), 2);
  EXPECT_EQ(g.group_size_of(0), 3);
  EXPECT_EQ(g.group_size_of(6), 4);
  GroupMap h(8, 3);  // groups {0,1,2}, {3,4,5}, {6,7}
  EXPECT_EQ(h.num_groups(), 3);
  EXPECT_EQ(h.group_size_of(7), 2);
  EXPECT_EQ(h.group_members(7), (std::vector<int>{6, 7}));
}

// ---------------------------------------------------------------------------
// xor_fold.
// ---------------------------------------------------------------------------

TEST(CkptXorFold, ZeroExtendsAndCancels) {
  std::vector<std::byte> acc;
  std::vector<std::byte> a{std::byte{0x0F}, std::byte{0xF0}};
  std::vector<std::byte> b{std::byte{0xFF}};
  checksum::xor_fold(acc, a);
  checksum::xor_fold(acc, b);
  ASSERT_EQ(acc.size(), 2u);
  EXPECT_EQ(acc[0], std::byte{0xF0});
  EXPECT_EQ(acc[1], std::byte{0xF0});
  // XOR is an involution: folding the same data again restores the rest.
  checksum::xor_fold(acc, a);
  EXPECT_EQ(acc[0], std::byte{0xFF});
  EXPECT_EQ(acc[1], std::byte{0x00});
}

// ---------------------------------------------------------------------------
// XorScheme driven purely through Hooks: a miniature in-memory "group".
// ---------------------------------------------------------------------------

/// A wired group of XorScheme instances whose hooks deliver synchronously.
struct MiniGroup {
  explicit MiniGroup(int nodes, int group_size)
      : map(nodes, group_size) {
    for (int i = 0; i < nodes; ++i) schemes.push_back(make_scheme(i));
  }

  std::unique_ptr<XorScheme> make_scheme(int index) {
    XorScheme::Hooks hooks;
    hooks.send_chunk = [this, index](int dst, const XorChunkMsg& msg,
                                     buf::Buffer chunk) {
      if (drop_chunks) return;
      schemes[static_cast<std::size_t>(dst)]->on_chunk(index, msg, chunk);
      if (duplicate_chunks)
        schemes[static_cast<std::size_t>(dst)]->on_chunk(index, msg, chunk);
    };
    hooks.send_piece = [this, index](int dst, const XorPieceMsg& msg,
                                     buf::Buffer image) {
      XorPieceMsg m = msg;
      // In-flight parity corruption: structurally sound, algebraically
      // wrong — only the verify-on-rebuild CRC can catch it.
      if (corrupt_piece_from == index)
        for (auto& b : m.parity) b = static_cast<std::uint8_t>(b ^ 0xFF);
      schemes[static_cast<std::size_t>(dst)]->on_piece(index, m, image);
    };
    hooks.report_impossible = [this](std::uint64_t barrier) {
      impossible_barriers.push_back(barrier);
    };
    hooks.restore_rebuilt = [this, index](Image img, std::uint64_t barrier) {
      rebuilt[index] = std::move(img);
      rebuilt_barrier = barrier;
    };
    return std::make_unique<XorScheme>(map, index, std::move(hooks));
  }

  GroupMap map;
  std::vector<std::unique_ptr<XorScheme>> schemes;
  std::map<int, Image> rebuilt;
  std::vector<std::uint64_t> impossible_barriers;
  std::uint64_t rebuilt_barrier = 0;
  bool duplicate_chunks = false;
  bool drop_chunks = false;
  int corrupt_piece_from = -1;
};

std::vector<Image> exchange_epoch(MiniGroup& g, std::uint64_t epoch,
                                  std::size_t base_size) {
  std::vector<Image> images;
  for (int i = 0; i < static_cast<int>(g.schemes.size()); ++i) {
    // Unequal sizes on purpose: the fold must zero-extend correctly.
    images.push_back(make_stored(epoch, epoch * 10, base_size + 7u * i,
                                 epoch * 100 + i));
  }
  for (int i = 0; i < static_cast<int>(g.schemes.size()); ++i)
    g.schemes[static_cast<std::size_t>(i)]->on_verified(images[i]);
  return images;
}

void expect_rebuild_matches(MiniGroup& g, const std::vector<Image>& images,
                            int dead, std::uint64_t barrier) {
  // A fresh spare takes over the dead index (its scheme state died with it).
  g.schemes[static_cast<std::size_t>(dead)] = g.make_scheme(dead);
  for (int i = 0; i < static_cast<int>(g.schemes.size()); ++i) {
    if (i == dead) continue;
    g.schemes[static_cast<std::size_t>(i)]->on_rebuild_request(dead, barrier,
                                                               images[i]);
  }
  ASSERT_TRUE(g.rebuilt.count(dead)) << "dead=" << dead;
  const Image& got = g.rebuilt[dead];
  const Image& want = images[static_cast<std::size_t>(dead)];
  EXPECT_EQ(got.epoch, want.epoch);
  EXPECT_EQ(got.iteration, want.iteration);
  ASSERT_EQ(got.image.size(), want.image.size());
  EXPECT_TRUE(std::equal(got.image.bytes().begin(), got.image.bytes().end(),
                         want.image.bytes().begin()))
      << "rebuilt image differs bitwise (dead=" << dead << ")";
  EXPECT_EQ(g.rebuilt_barrier, barrier);
  g.rebuilt.clear();
}

TEST(CkptXorScheme, ParityCompletesAfterAllChunksArrive) {
  MiniGroup g(4, 4);
  exchange_epoch(g, 1, 64);
  for (const auto& s : g.schemes) {
    EXPECT_TRUE(s->parity_complete_for(1));
    EXPECT_GT(s->redundancy_bytes(), 0u);
    // ~1/(k-1) of an image per node, not a full copy.
    EXPECT_LT(s->redundancy_bytes(), 64u + 7u * 4u);
  }
}

TEST(CkptXorScheme, AnySingleDeadMemberRebuildsBitwise) {
  for (int dead = 0; dead < 4; ++dead) {
    MiniGroup g(4, 4);
    std::vector<Image> images = exchange_epoch(g, 1, 61);
    expect_rebuild_matches(g, images, dead, 10);
    EXPECT_TRUE(g.impossible_barriers.empty());
  }
}

TEST(CkptXorScheme, MinimumGroupOfTwoDegeneratesToMirroring) {
  // n=2: one chunk = the whole image; the partner's parity IS a full copy.
  MiniGroup g(2, 2);
  std::vector<Image> images = exchange_epoch(g, 1, 33);
  expect_rebuild_matches(g, images, 1, 4);
}

TEST(CkptXorScheme, RebuildAfterLaterEpochUsesTheLatestParity) {
  MiniGroup g(4, 4);
  exchange_epoch(g, 1, 64);
  std::vector<Image> images = exchange_epoch(g, 2, 80);
  for (const auto& s : g.schemes) {
    EXPECT_TRUE(s->parity_complete_for(2));
    EXPECT_FALSE(s->parity_complete_for(1));
  }
  expect_rebuild_matches(g, images, 2, 11);
}

TEST(CkptXorScheme, DuplicatedChunksDoNotCancelParity) {
  // XOR-folding a duplicate would cancel that contribution to zero; the
  // identity set must make redelivery idempotent.
  MiniGroup g(4, 4);
  g.duplicate_chunks = true;
  std::vector<Image> images = exchange_epoch(g, 1, 57);
  expect_rebuild_matches(g, images, 3, 6);
}

TEST(CkptXorScheme, IncompleteParityReportsImpossible) {
  MiniGroup g(4, 4);
  g.drop_chunks = true;  // parity exchange never happens
  std::vector<Image> images = exchange_epoch(g, 1, 50);
  g.schemes[0] = g.make_scheme(0);
  g.schemes[1]->on_rebuild_request(0, 9, images[1]);
  EXPECT_TRUE(g.rebuilt.empty());
  ASSERT_EQ(g.impossible_barriers.size(), 1u);
  EXPECT_EQ(g.impossible_barriers[0], 9u);
}

TEST(CkptXorScheme, ParityEpochBehindVerifiedReportsImpossible) {
  // The member died between a commit and the parity exchange: survivors'
  // verified epoch moved ahead of their complete parity.
  MiniGroup g(4, 4);
  exchange_epoch(g, 1, 64);
  g.drop_chunks = true;
  std::vector<Image> images = exchange_epoch(g, 2, 64);  // chunks lost
  g.schemes[0] = g.make_scheme(0);
  g.schemes[1]->on_rebuild_request(0, 12, images[1]);
  EXPECT_TRUE(g.rebuilt.empty());
  ASSERT_EQ(g.impossible_barriers.size(), 1u);
}

TEST(CkptXorScheme, ResetForgetsParity) {
  MiniGroup g(4, 4);
  exchange_epoch(g, 1, 64);
  g.schemes[2]->reset();
  EXPECT_FALSE(g.schemes[2]->parity_complete_for(1));
  EXPECT_EQ(g.schemes[2]->redundancy_bytes(), 0u);
}

TEST(CkptXorScheme, CorruptedParityPieceIsRejectedNotPromoted) {
  // Verify-on-rebuild: a survivor's parity block is flipped in flight.
  // The spare's reconstruction fails the recorded CRC32C, is counted as
  // rejected, and falls down the recovery ladder instead of silently
  // installing garbage state.
  MiniGroup g(4, 4);
  std::vector<Image> images = exchange_epoch(g, 1, 73);
  g.corrupt_piece_from = 2;
  g.schemes[0] = g.make_scheme(0);
  for (int i = 1; i < 4; ++i)
    g.schemes[static_cast<std::size_t>(i)]->on_rebuild_request(0, 21,
                                                               images[i]);
  EXPECT_TRUE(g.rebuilt.empty()) << "corrupted rebuild was promoted";
  ASSERT_FALSE(g.impossible_barriers.empty());
  EXPECT_EQ(g.impossible_barriers[0], 21u);
  EXPECT_EQ(g.schemes[0]->stats().rebuilds_rejected, 1u);
  EXPECT_EQ(g.schemes[0]->stats().rebuilds_completed, 0u);
}

TEST(CkptXorScheme, StatsCountChunksAndRebuilds) {
  MiniGroup g(4, 4);
  std::vector<Image> images = exchange_epoch(g, 1, 64);
  const RedundancyStats& st = g.schemes[0]->stats();
  EXPECT_EQ(st.parity_chunks_sent, 3u);
  EXPECT_GT(st.parity_bytes_sent, 0u);
  expect_rebuild_matches(g, images, 2, 5);
  EXPECT_EQ(g.schemes[2]->stats().rebuilds_completed, 1u);
  EXPECT_EQ(g.schemes[0]->stats().rebuild_pieces_sent, 1u);
}

// ---------------------------------------------------------------------------
// CheckpointVault: on-disk format, corruption skipping, pruning.
// ---------------------------------------------------------------------------

class CkptVaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("acr_vault_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  StoredImage stored(std::uint64_t epoch, std::uint64_t iteration,
                     std::size_t size) {
    StoredImage s;
    s.epoch = epoch;
    s.iteration = iteration;
    s.image = make_image(size, epoch * 977 + iteration);
    return s;
  }

  std::filesystem::path dir_;
};

TEST_F(CkptVaultTest, LoadLatestSkipsCorruptTrailer) {
  CheckpointVault vault(dir_, "ck");
  vault.store(stored(1, 10, 256));
  std::filesystem::path newest = vault.store(stored(2, 20, 256));
  // Flip one payload byte of the newest file; its Fletcher-64 trailer no
  // longer matches, so load_latest must fall back to epoch 1.
  {
    std::fstream f(newest, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(40);  // inside the payload, past the 32-byte header
    char b = 0;
    f.seekg(40);
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x1);
    f.seekp(40);
    f.write(&b, 1);
  }
  EXPECT_THROW(vault.load(2), pup::StreamError);
  std::optional<StoredImage> latest = vault.load_latest();
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->epoch, 1u);
}

TEST_F(CkptVaultTest, LoadLatestSkipsTruncatedFile) {
  CheckpointVault vault(dir_, "ck");
  vault.store(stored(4, 11, 256));
  std::filesystem::path newest = vault.store(stored(7, 12, 256));
  std::filesystem::resize_file(newest, 16);  // mid-header truncation
  EXPECT_THROW(vault.load(7), pup::StreamError);
  std::optional<StoredImage> latest = vault.load_latest();
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->epoch, 4u);
}

TEST_F(CkptVaultTest, ConstructionCleansInterruptedWriteTmpFiles) {
  {
    CheckpointVault vault(dir_, "ck");
    vault.store(stored(1, 5, 128));
  }
  // Fake an interrupted store(): a stranded temp file next to a real one,
  // plus a foreign prefix's temp that must be left alone.
  std::filesystem::path stranded = dir_ / "ck.e2.ckpt.tmp";
  std::filesystem::path foreign = dir_ / "other.e9.ckpt.tmp";
  std::ofstream(stranded) << "partial";
  std::ofstream(foreign) << "partial";
  CheckpointVault vault(dir_, "ck");
  EXPECT_FALSE(std::filesystem::exists(stranded));
  EXPECT_TRUE(std::filesystem::exists(foreign));
  std::optional<StoredImage> latest = vault.load_latest();
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->epoch, 1u);
}

TEST_F(CkptVaultTest, PruneKeepsTheBoundaryEpoch) {
  CheckpointVault vault(dir_, "ck");
  for (std::uint64_t e : {1u, 2u, 3u, 4u}) vault.store(stored(e, e * 10, 64));
  vault.prune(/*keep_from_epoch=*/3);
  EXPECT_EQ(vault.epochs_on_disk(), (std::vector<std::uint64_t>{3, 4}));
  EXPECT_TRUE(vault.load(3).has_value());
  EXPECT_FALSE(vault.load(2).has_value());
}

TEST_F(CkptVaultTest, EpochsOnDiskSortedAndIgnoresUnrelatedFiles) {
  CheckpointVault vault(dir_, "ck");
  // Store out of order; listing must come back ascending.
  for (std::uint64_t e : {12u, 2u, 100u, 7u}) vault.store(stored(e, 1, 32));
  std::ofstream(dir_ / "ck.notes.txt") << "unrelated";
  std::ofstream(dir_ / "other.e5.ckpt") << "different prefix";
  EXPECT_EQ(vault.epochs_on_disk(), (std::vector<std::uint64_t>{2, 7, 12, 100}));
}

}  // namespace
}  // namespace acr::ckpt
