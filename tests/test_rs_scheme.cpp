// RsScheme unit tests: the multi-parity encode/rebuild algebra driven
// purely through its Hooks — a miniature in-memory "group" with
// synchronous delivery, no cluster, no clock (the test_ckpt.cpp XorScheme
// harness generalised to multi-loss). The corrupted-piece tests pin the
// verify-on-rebuild contract: a reconstruction whose CRC32C disagrees
// with what the survivors recorded must degrade down the recovery ladder,
// never silently promote.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <map>
#include <memory>
#include <vector>

#include "checksum/kernels.h"
#include "ckpt/codec.h"
#include "ckpt/group.h"
#include "ckpt/rs.h"
#include "common/rng.h"

namespace acr::ckpt {
namespace {

pup::Checkpoint make_image(std::size_t size, std::uint64_t salt) {
  Pcg32 rng(salt, 0xC4u);
  std::vector<std::byte> bytes(size);
  for (auto& b : bytes) b = static_cast<std::byte>(rng.bounded(256));
  return pup::Checkpoint(std::move(bytes));
}

Image make_stored(std::uint64_t epoch, std::uint64_t iteration,
                  std::size_t size, std::uint64_t salt) {
  Image img;
  img.valid = true;
  img.epoch = epoch;
  img.iteration = iteration;
  img.image = make_image(size, salt);
  return img;
}

/// A wired group of RsScheme instances whose hooks deliver synchronously.
struct RsMiniGroup {
  RsMiniGroup(int nodes, int group_size, int parity)
      : map(nodes, group_size), parity(parity) {
    for (int i = 0; i < nodes; ++i) schemes.push_back(make_scheme(i));
  }

  std::unique_ptr<RsScheme> make_scheme(int index) {
    RsScheme::Hooks hooks;
    hooks.send_chunk = [this, index](int dst, const RsChunkMsg& msg,
                                     buf::Buffer chunk) {
      if (drop_chunks) return;
      schemes[static_cast<std::size_t>(dst)]->on_chunk(index, msg, chunk);
      if (duplicate_chunks)
        schemes[static_cast<std::size_t>(dst)]->on_chunk(index, msg, chunk);
    };
    hooks.send_delta_chunk = [this, index](int dst,
                                           const RsDeltaChunkMsg& msg,
                                           buf::Buffer payload) {
      if (drop_chunks) return;
      schemes[static_cast<std::size_t>(dst)]->on_delta_chunk(index, msg,
                                                             payload);
    };
    hooks.send_piece = [this, index](int dst, const RsPieceMsg& msg,
                                     buf::Buffer image) {
      RsPieceMsg m = msg;
      // In-flight parity corruption: structurally sound (lengths intact),
      // algebraically wrong — only the CRC check can catch it.
      if (corrupt_piece_from == index)
        for (auto& b : m.parity) b = static_cast<std::uint8_t>(b ^ 0xFF);
      schemes[static_cast<std::size_t>(dst)]->on_piece(index, m, image);
    };
    hooks.report_impossible = [this](std::uint64_t barrier) {
      impossible_barriers.push_back(barrier);
    };
    hooks.restore_rebuilt = [this, index](Image img, std::uint64_t barrier) {
      rebuilt[index] = std::move(img);
      rebuilt_barrier = barrier;
    };
    return std::make_unique<RsScheme>(map, index, parity, std::move(hooks));
  }

  GroupMap map;
  int parity;
  std::vector<std::unique_ptr<RsScheme>> schemes;
  std::map<int, Image> rebuilt;
  std::vector<std::uint64_t> impossible_barriers;
  std::uint64_t rebuilt_barrier = 0;
  bool duplicate_chunks = false;
  bool drop_chunks = false;
  int corrupt_piece_from = -1;
};

std::vector<Image> exchange_epoch(RsMiniGroup& g, std::uint64_t epoch,
                                  std::size_t base_size) {
  std::vector<Image> images;
  for (int i = 0; i < static_cast<int>(g.schemes.size()); ++i) {
    // Unequal sizes on purpose: the chunk grid must zero-extend correctly.
    images.push_back(make_stored(epoch, epoch * 10, base_size + 7u * i,
                                 epoch * 100 + i));
  }
  for (int i = 0; i < static_cast<int>(g.schemes.size()); ++i)
    g.schemes[static_cast<std::size_t>(i)]->on_verified(images[i]);
  return images;
}

/// Kill `dead` (fresh schemes take over their indices), run the rebuild
/// wave, and require every dead image back bitwise.
void expect_multi_rebuild(RsMiniGroup& g, const std::vector<Image>& images,
                          std::vector<int> dead, std::uint64_t barrier) {
  std::sort(dead.begin(), dead.end());
  for (int d : dead)
    g.schemes[static_cast<std::size_t>(d)] = g.make_scheme(d);
  for (int i = 0; i < static_cast<int>(g.schemes.size()); ++i) {
    if (std::binary_search(dead.begin(), dead.end(), i)) continue;
    g.schemes[static_cast<std::size_t>(i)]->on_rebuild_request(dead, barrier,
                                                               images[i]);
  }
  for (int d : dead) {
    ASSERT_TRUE(g.rebuilt.count(d)) << "dead=" << d;
    const Image& got = g.rebuilt[d];
    const Image& want = images[static_cast<std::size_t>(d)];
    EXPECT_EQ(got.epoch, want.epoch);
    EXPECT_EQ(got.iteration, want.iteration);
    ASSERT_EQ(got.image.size(), want.image.size()) << "dead=" << d;
    EXPECT_TRUE(std::equal(got.image.bytes().begin(), got.image.bytes().end(),
                           want.image.bytes().begin()))
        << "rebuilt image differs bitwise (dead=" << d << ")";
  }
  EXPECT_EQ(g.rebuilt_barrier, barrier);
  g.rebuilt.clear();
}

TEST(CkptRsScheme, ParityCompletesAfterAllChunksArrive) {
  RsMiniGroup g(5, 5, 2);
  exchange_epoch(g, 1, 90);
  for (const auto& s : g.schemes) {
    EXPECT_TRUE(s->parity_complete_for(1));
    EXPECT_GT(s->redundancy_bytes(), 0u);
    // Each member ships k chunks to m holders each.
    EXPECT_EQ(s->stats().parity_chunks_sent,
              static_cast<std::uint64_t>((5 - 2) * 2));
  }
}

TEST(CkptRsScheme, SingleParityRebuildsAnySingleLoss) {
  // m = 1 is the XOR rotation expressed in GF(256) (every coefficient 1).
  for (int dead = 0; dead < 4; ++dead) {
    RsMiniGroup g(4, 4, 1);
    std::vector<Image> images = exchange_epoch(g, 1, 61);
    expect_multi_rebuild(g, images, {dead}, 10);
    EXPECT_TRUE(g.impossible_barriers.empty());
  }
}

TEST(CkptRsScheme, DoubleParityRebuildsEveryPairOfLosses) {
  for (int d1 = 0; d1 < 4; ++d1) {
    for (int d2 = d1 + 1; d2 < 4; ++d2) {
      RsMiniGroup g(4, 4, 2);
      std::vector<Image> images = exchange_epoch(g, 1, 83);
      expect_multi_rebuild(g, images, {d1, d2}, 7);
      EXPECT_TRUE(g.impossible_barriers.empty())
          << "dead={" << d1 << "," << d2 << "}";
    }
  }
}

TEST(CkptRsScheme, TripleParityRebuildsEveryTripleOfLosses) {
  for (int d1 = 0; d1 < 5; ++d1)
    for (int d2 = d1 + 1; d2 < 5; ++d2)
      for (int d3 = d2 + 1; d3 < 5; ++d3) {
        RsMiniGroup g(5, 5, 3);
        std::vector<Image> images = exchange_epoch(g, 1, 47);
        expect_multi_rebuild(g, images, {d1, d2, d3}, 9);
        EXPECT_TRUE(g.impossible_barriers.empty());
      }
}

TEST(CkptRsScheme, PartialLossWithinBudgetRebuilds) {
  // f < m: one dead under double parity still rebuilds (and exercises the
  // surviving-slot selection when extra equations are available).
  RsMiniGroup g(4, 4, 2);
  std::vector<Image> images = exchange_epoch(g, 1, 120);
  expect_multi_rebuild(g, images, {2}, 3);
}

TEST(CkptRsScheme, RebuildAfterLaterEpochUsesTheLatestParity) {
  RsMiniGroup g(4, 4, 2);
  exchange_epoch(g, 1, 64);
  std::vector<Image> images = exchange_epoch(g, 2, 80);
  for (const auto& s : g.schemes) {
    EXPECT_TRUE(s->parity_complete_for(2));
    EXPECT_FALSE(s->parity_complete_for(1));
  }
  expect_multi_rebuild(g, images, {0, 3}, 11);
}

TEST(CkptRsScheme, DuplicatedChunksDoNotCorruptParity) {
  // GF fold of a duplicate would cancel the contribution (x ^ x = 0); the
  // identity set must make at-least-once delivery idempotent.
  RsMiniGroup g(4, 4, 2);
  g.duplicate_chunks = true;
  std::vector<Image> images = exchange_epoch(g, 1, 57);
  expect_multi_rebuild(g, images, {1, 2}, 6);
}

TEST(CkptRsScheme, IncompleteParityReportsImpossible) {
  RsMiniGroup g(4, 4, 2);
  g.drop_chunks = true;  // parity exchange never happens
  std::vector<Image> images = exchange_epoch(g, 1, 50);
  g.schemes[0] = g.make_scheme(0);
  g.schemes[1]->on_rebuild_request({0}, 9, images[1]);
  EXPECT_TRUE(g.rebuilt.empty());
  ASSERT_EQ(g.impossible_barriers.size(), 1u);
  EXPECT_EQ(g.impossible_barriers[0], 9u);
}

TEST(CkptRsScheme, DeadSetBeyondParityBudgetReportsImpossible) {
  // Three dead under m = 2: undecodable no matter what arrives. The spare
  // must refuse, not solve a singular system.
  RsMiniGroup g(4, 4, 2);
  std::vector<Image> images = exchange_epoch(g, 1, 66);
  for (int d : {0, 1, 2})
    g.schemes[static_cast<std::size_t>(d)] = g.make_scheme(d);
  g.schemes[3]->on_rebuild_request({0, 1, 2}, 13, images[3]);
  EXPECT_TRUE(g.rebuilt.empty());
  EXPECT_FALSE(g.impossible_barriers.empty());
}

TEST(CkptRsScheme, CorruptedParityPieceIsRejectedNotPromoted) {
  // Satellite: verify-on-rebuild. A survivor's parity blob is flipped in
  // flight — structurally valid, algebraically wrong. The spare's
  // reconstruction fails its recorded CRC32C, is counted as rejected, and
  // falls down the ladder instead of silently installing garbage state.
  RsMiniGroup g(4, 4, 2);
  std::vector<Image> images = exchange_epoch(g, 1, 73);
  g.corrupt_piece_from = 2;  // holds slot 0 of stripe 2 (dead 0's chunk 1)
  g.schemes[0] = g.make_scheme(0);
  for (int i = 1; i < 4; ++i)
    g.schemes[static_cast<std::size_t>(i)]->on_rebuild_request({0}, 21,
                                                               images[i]);
  EXPECT_TRUE(g.rebuilt.empty()) << "corrupted rebuild was promoted";
  ASSERT_FALSE(g.impossible_barriers.empty());
  EXPECT_EQ(g.impossible_barriers[0], 21u);
  EXPECT_EQ(g.schemes[0]->stats().rebuilds_rejected, 1u);
  EXPECT_EQ(g.schemes[0]->stats().rebuilds_completed, 0u);
}

TEST(CkptRsScheme, StatsSplitEncodeFromRebuildTraffic) {
  RsMiniGroup g(4, 4, 2);
  std::vector<Image> images = exchange_epoch(g, 1, 64);
  const RedundancyStats& st = g.schemes[0]->stats();
  EXPECT_EQ(st.parity_chunks_sent, 4u);  // k=2 chunks x m=2 holders
  EXPECT_GT(st.parity_bytes_sent, 0u);
  EXPECT_EQ(st.rebuild_pieces_sent, 0u);
  expect_multi_rebuild(g, images, {2, 3}, 5);
  EXPECT_EQ(g.schemes[2]->stats().rebuilds_completed, 1u);
  EXPECT_EQ(g.schemes[3]->stats().rebuilds_completed, 1u);
  // Each survivor shipped one piece per dead spare.
  EXPECT_EQ(g.schemes[0]->stats().rebuild_pieces_sent, 2u);
  EXPECT_GT(g.schemes[0]->stats().rebuild_bytes_sent, 0u);
}

TEST(CkptRsScheme, ResetForgetsParity) {
  RsMiniGroup g(4, 4, 2);
  exchange_epoch(g, 1, 64);
  g.schemes[2]->reset();
  EXPECT_FALSE(g.schemes[2]->parity_complete_for(1));
  EXPECT_EQ(g.schemes[2]->redundancy_bytes(), 0u);
}

TEST(CkptRsScheme, DeltaRoundAdvancesParityBitwise) {
  // Epoch 1 exchanges full chunks; epoch 2 ships only the dirty diff with
  // DeltaHints, and the holders advance their seeded parity by C * diff.
  // A double loss rebuilt from the delta-built round must still be exact.
  RsMiniGroup g(4, 4, 2);
  std::vector<Image> base = exchange_epoch(g, 1, 96);

  CodecConfig codec;
  codec.delta = DeltaMode::On;
  std::vector<Image> next;
  for (int i = 0; i < 4; ++i) {
    Image img = base[static_cast<std::size_t>(i)];
    img.epoch = 2;
    img.iteration = 20;
    // Mutate a few bytes in place (sizes unchanged: delta stays legal).
    std::vector<std::byte> bytes(img.image.bytes().begin(),
                                 img.image.bytes().end());
    bytes[3] ^= std::byte{0x5A};
    bytes[bytes.size() / 2] ^= std::byte{0xC3};
    img.image = pup::Checkpoint(std::move(bytes));
    img.image.epoch = 2;
    next.push_back(std::move(img));
  }
  for (int i = 0; i < 4; ++i) {
    const Image& b = base[static_cast<std::size_t>(i)];
    const Image& n = next[static_cast<std::size_t>(i)];
    std::vector<std::uint32_t> base_dg{
        checksum::crc32c_chunked(b.image.bytes())};
    std::vector<std::uint32_t> dg{checksum::crc32c_chunked(n.image.bytes())};
    buf::Buffer base_buf = b.image.buffer();
    DeltaHints hints;
    hints.codec = &codec;
    hints.base_image = &base_buf;
    hints.base_digests = &base_dg;
    hints.digests = &dg;
    hints.base_epoch = 1;
    g.schemes[static_cast<std::size_t>(i)]->on_verified(n, &hints);
  }
  for (const auto& s : g.schemes) {
    EXPECT_TRUE(s->parity_complete_for(2));
    EXPECT_GT(s->stats().parity_delta_chunks_sent, 0u);
    EXPECT_EQ(s->stats().parity_rounds_poisoned, 0u);
  }
  expect_multi_rebuild(g, next, {0, 2}, 15);
}

}  // namespace
}  // namespace acr::ckpt
