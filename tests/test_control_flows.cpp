// Fig. 5 control-flow tests: trace-level assertions that each scheme's
// recovery follows the paper's event sequence, not merely that it ends in
// the right state.
#include <gtest/gtest.h>

#include "acr/runtime.h"
#include "acr/stats.h"
#include "apps/jacobi3d.h"

namespace acr {
namespace {

apps::Jacobi3DConfig app_cfg() {
  apps::Jacobi3DConfig cfg;
  cfg.tasks_x = cfg.tasks_y = cfg.tasks_z = 2;
  cfg.block_x = cfg.block_y = cfg.block_z = 4;
  cfg.iterations = 40;
  cfg.slots_per_node = 2;
  cfg.seconds_per_point = 1e-5;
  return cfg;
}

struct DriverRun {
  std::unique_ptr<AcrRuntime> runtime;
  RunSummary summary;
};

DriverRun run_with_kill(ResilienceScheme scheme, double kill_at) {
  apps::Jacobi3DConfig j = app_cfg();
  AcrConfig ac;
  ac.scheme = scheme;
  ac.checkpoint_interval = 0.005;
  ac.heartbeat_period = 0.0005;
  ac.heartbeat_timeout = 0.002;
  rt::ClusterConfig cc;
  cc.nodes_per_replica = j.nodes_needed();
  cc.spare_nodes = 2;
  DriverRun run;
  run.runtime = std::make_unique<AcrRuntime>(ac, cc);
  run.runtime->set_task_factory(j.factory());
  run.runtime->setup();
  run.runtime->engine().schedule_at(kill_at, [&rt_ = *run.runtime] {
    rt_.cluster().trace().record(rt_.engine().now(),
                                 rt::TraceKind::HardFailureInjected, 1, 1);
    rt_.cluster().kill_role(1, 1);
  });
  run.summary = run.runtime->run(100.0);
  return run;
}

/// First event of `kind` at or after time `t` (several protocol steps can
/// share a timestamp in virtual time).
const rt::TraceEvent* first_after(const rt::TraceLog& log, rt::TraceKind kind,
                                  double t) {
  for (const auto& e : log.events())
    if (e.kind == kind && e.time >= t) return &e;
  return nullptr;
}

double last_commit_before(const rt::TraceLog& log, double t) {
  double result = -1.0;
  for (const auto& e : log.events())
    if (e.kind == rt::TraceKind::CheckpointCommitted && e.time < t)
      result = e.time;
  return result;
}

TEST(ControlFlow, StrongRollsBackWithoutNewCheckpoint) {
  // Fig. 5b: the crashed replica restarts from the checkpoint at T1; no
  // recovery checkpoint is taken between detection and recovery-complete.
  DriverRun run = run_with_kill(ResilienceScheme::Strong, 0.012);
  ASSERT_TRUE(run.summary.complete);
  const auto& log = run.runtime->trace();
  const auto* detected =
      first_after(log, rt::TraceKind::HardFailureDetected, 0.012);
  ASSERT_NE(detected, nullptr);
  const auto* recovered =
      first_after(log, rt::TraceKind::RecoveryCompleted, detected->time);
  ASSERT_NE(recovered, nullptr);
  // No checkpoint request in (detected, recovered): strong reuses T1.
  const auto* req =
      first_after(log, rt::TraceKind::CheckpointRequested, detected->time);
  if (req != nullptr)
    EXPECT_GE(req->time, recovered->time)
        << "strong recovery must not take a fresh checkpoint";
  // A verified checkpoint existed before the failure to roll back to.
  EXPECT_GT(last_commit_before(log, detected->time), 0.0);
}

TEST(ControlFlow, MediumTakesImmediateRecoveryCheckpoint) {
  // Fig. 5c: detection triggers a (recovery) checkpoint right away, well
  // before the next periodic tick would have fired.
  DriverRun run = run_with_kill(ResilienceScheme::Medium, 0.012);
  ASSERT_TRUE(run.summary.complete);
  const auto& log = run.runtime->trace();
  const auto* detected =
      first_after(log, rt::TraceKind::HardFailureDetected, 0.012);
  ASSERT_NE(detected, nullptr);
  const auto* req =
      first_after(log, rt::TraceKind::CheckpointRequested, detected->time);
  ASSERT_NE(req, nullptr);
  EXPECT_NE(req->detail.find("recovery"), std::string::npos);
  EXPECT_LT(req->time - detected->time, 0.002)
      << "medium must checkpoint immediately on detection";
  const auto* recovered =
      first_after(log, rt::TraceKind::RecoveryCompleted, detected->time);
  ASSERT_NE(recovered, nullptr);
  EXPECT_GE(recovered->time, req->time);
}

TEST(ControlFlow, WeakWaitsForNextPeriodicCheckpoint) {
  // Fig. 5d: nothing happens at detection; recovery rides the next
  // periodic checkpoint (~interval after the last commit).
  DriverRun run = run_with_kill(ResilienceScheme::Weak, 0.012);
  ASSERT_TRUE(run.summary.complete);
  const auto& log = run.runtime->trace();
  const auto* detected =
      first_after(log, rt::TraceKind::HardFailureDetected, 0.012);
  ASSERT_NE(detected, nullptr);
  const auto* req =
      first_after(log, rt::TraceKind::CheckpointRequested, detected->time);
  ASSERT_NE(req, nullptr);
  // The recovery checkpoint is the next *scheduled* one: it fires no
  // sooner than ~40% of an interval after detection in this timing
  // arrangement (kill shortly after a periodic commit).
  EXPECT_GT(req->time - detected->time, 0.002)
      << "weak must not take an immediate checkpoint";
  const auto* recovered =
      first_after(log, rt::TraceKind::RecoveryCompleted, req->time);
  ASSERT_NE(recovered, nullptr);
}

TEST(ControlFlow, HardOnlyRecoversWithoutPeriodicCheckpoints) {
  // Fig. 5a: no periodic checkpointing at all; the failure triggers the
  // one and only (recovery) checkpoint.
  DriverRun run = run_with_kill(ResilienceScheme::HardOnly, 0.012);
  ASSERT_TRUE(run.summary.complete);
  const auto& log = run.runtime->trace();
  std::size_t requests = log.count(rt::TraceKind::CheckpointRequested);
  EXPECT_EQ(requests, 1u);  // exactly the recovery checkpoint
  const auto* req = first_after(log, rt::TraceKind::CheckpointRequested, 0.0);
  ASSERT_NE(req, nullptr);
  EXPECT_NE(req->detail.find("recovery"), std::string::npos);
  EXPECT_EQ(log.count(rt::TraceKind::RecoveryCompleted), 1u);
}

TEST(ControlFlow, RecoveryLatencyIsBoundedByDetectionPlusTransfer) {
  DriverRun run = run_with_kill(ResilienceScheme::Strong, 0.012);
  ASSERT_TRUE(run.summary.complete);
  TraceSummary ts = summarize_trace(run.runtime->trace());
  ASSERT_EQ(ts.recoveries.size(), 1u);
  // Detection took ~heartbeat_timeout; recovery itself (restore barrier)
  // is a few checkpoint-transfer latencies, well under one interval.
  EXPECT_LT(ts.mean_detection_latency, 0.004);
  EXPECT_LT(ts.recoveries[0].duration(), 0.005);
}

}  // namespace
}  // namespace acr
