// Torus and replica-mapping tests, including the Fig. 6 link-load patterns.
#include <gtest/gtest.h>

#include <set>

#include "net/link_load.h"
#include "topology/mapping.h"
#include "topology/torus.h"

namespace acr::topo {
namespace {

TEST(Torus, RankCoordBijection) {
  Torus3D t(3, 4, 5);
  std::set<int> seen;
  for (int z = 0; z < 5; ++z)
    for (int y = 0; y < 4; ++y)
      for (int x = 0; x < 3; ++x) {
        int r = t.rank_of({x, y, z});
        EXPECT_TRUE(seen.insert(r).second);
        EXPECT_EQ(t.coord_of(r), (Coord{x, y, z}));
      }
  EXPECT_EQ(static_cast<int>(seen.size()), t.num_nodes());
}

TEST(Torus, TxyzOrderIsZSlowest) {
  Torus3D t(4, 4, 4);
  EXPECT_EQ(t.rank_of({1, 0, 0}), 1);
  EXPECT_EQ(t.rank_of({0, 1, 0}), 4);
  EXPECT_EQ(t.rank_of({0, 0, 1}), 16);
}

TEST(Torus, TorusDeltaWrapsShortestWay) {
  EXPECT_EQ(Torus3D::torus_delta(0, 1, 8), 1);
  EXPECT_EQ(Torus3D::torus_delta(0, 7, 8), -1);
  EXPECT_EQ(Torus3D::torus_delta(7, 0, 8), 1);
  EXPECT_EQ(Torus3D::torus_delta(0, 4, 8), 4);  // tie resolves positive
  EXPECT_EQ(Torus3D::torus_delta(2, 2, 8), 0);
}

TEST(Torus, HopDistanceAndRouteAgree) {
  Torus3D t(4, 6, 8);
  Coord a{0, 1, 7}, b{3, 4, 2};
  auto path = t.route(a, b);
  EXPECT_EQ(static_cast<int>(path.size()), t.hop_distance(a, b));
}

TEST(Torus, RouteFollowsLinks) {
  Torus3D t(4, 4, 4);
  Coord a{3, 0, 0}, b{0, 2, 3};
  Coord cur = a;
  for (int link : t.route(a, b)) {
    auto [src, dir] = t.link_of(link);
    EXPECT_EQ(src, cur);
    cur = t.neighbor(src, dir);
  }
  EXPECT_EQ(cur, b);
}

TEST(Torus, RouteEmptyForSelf) {
  Torus3D t(4, 4, 4);
  EXPECT_TRUE(t.route({1, 1, 1}, {1, 1, 1}).empty());
}

TEST(Torus, BgpPartitionShapes) {
  // Z grows 8 -> 32 from 512 to 2048 nodes, then saturates (§6.2).
  EXPECT_EQ(bgp_partition(512).dim_z(), 8);
  EXPECT_EQ(bgp_partition(1024).dim_z(), 16);
  EXPECT_EQ(bgp_partition(2048).dim_z(), 32);
  EXPECT_EQ(bgp_partition(8192).dim_z(), 32);
  EXPECT_EQ(bgp_partition(32768).dim_z(), 32);
  for (int n : {512, 1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072})
    EXPECT_EQ(bgp_partition(n).num_nodes(), n);
}

TEST(Torus, BgpPartitionFallbackFactors) {
  EXPECT_EQ(bgp_partition(24).num_nodes(), 24);
  EXPECT_EQ(bgp_partition(100).num_nodes(), 100);
}

// ---------------------------------------------------------------------------
// Mappings.
// ---------------------------------------------------------------------------

class MappingBijection
    : public ::testing::TestWithParam<std::tuple<MappingScheme, int>> {};

TEST_P(MappingBijection, CoversEveryPhysicalNodeOnce) {
  auto [scheme, zdim] = GetParam();
  Torus3D t(4, 4, zdim);
  ReplicaMapping m(t, scheme);
  std::set<int> physical;
  for (int r = 0; r < 2; ++r) {
    for (int i = 0; i < m.nodes_per_replica(); ++i) {
      int rank = m.node_rank(r, i);
      EXPECT_TRUE(physical.insert(rank).second)
          << "rank " << rank << " assigned twice";
      auto placement = m.placement_of(rank);
      EXPECT_EQ(placement.replica, r);
      EXPECT_EQ(placement.index, i);
    }
  }
  EXPECT_EQ(static_cast<int>(physical.size()), t.num_nodes());
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, MappingBijection,
    ::testing::Combine(::testing::Values(MappingScheme::Default,
                                         MappingScheme::Column,
                                         MappingScheme::Mixed),
                       ::testing::Values(4, 8, 16)));

TEST(Mapping, ColumnBuddiesAreAdjacent) {
  Torus3D t(8, 8, 8);
  ReplicaMapping m(t, MappingScheme::Column);
  for (int i = 0; i < m.nodes_per_replica(); ++i)
    EXPECT_EQ(m.buddy_distance(i), 1);
}

TEST(Mapping, MixedBuddiesAreChunkApart) {
  Torus3D t(8, 8, 8);
  ReplicaMapping m(t, MappingScheme::Mixed, 2);
  for (int i = 0; i < m.nodes_per_replica(); ++i)
    EXPECT_EQ(m.buddy_distance(i), 2);
}

TEST(Mapping, DefaultBuddiesCrossTheBisection) {
  Torus3D t(8, 8, 8);
  ReplicaMapping m(t, MappingScheme::Default);
  for (int i = 0; i < m.nodes_per_replica(); ++i)
    EXPECT_EQ(m.buddy_distance(i), 4);  // Z/2 with tie-positive wrap
}

/// Fig. 6(a): on an 8-deep Z ring split 4|4, the per-ring link loads of the
/// buddy exchange are 1,2,3,4,3,2,1 with the bisection link carrying Z/2.
TEST(Mapping, Figure6DefaultLinkLoads) {
  Torus3D t(1, 1, 8);
  ReplicaMapping m(t, MappingScheme::Default);
  net::LinkLoadModel loads(t);
  loads.add_traffic(m.buddy_pairs(), 1.0);
  std::vector<std::uint64_t> zplus;
  for (int z = 0; z < 8; ++z)
    zplus.push_back(loads.link_messages(t.link_id({0, 0, z}, Dir::ZPlus)));
  EXPECT_EQ(zplus, (std::vector<std::uint64_t>{1, 2, 3, 4, 3, 2, 1, 0}));
  EXPECT_EQ(loads.max_link_messages(), 4u);
}

/// Fig. 6(b): column mapping is contention-free — every link carries at
/// most one buddy message.
TEST(Mapping, Figure6ColumnLinkLoads) {
  Torus3D t(8, 8, 8);
  ReplicaMapping m(t, MappingScheme::Column);
  net::LinkLoadModel loads(t);
  loads.add_traffic(m.buddy_pairs(), 1.0);
  EXPECT_EQ(loads.max_link_messages(), 1u);
}

/// Fig. 6(c): mixed mapping with chunk 2 peaks at 2 messages per link.
TEST(Mapping, Figure6MixedLinkLoads) {
  Torus3D t(8, 8, 8);
  ReplicaMapping m(t, MappingScheme::Mixed, 2);
  net::LinkLoadModel loads(t);
  loads.add_traffic(m.buddy_pairs(), 1.0);
  EXPECT_EQ(loads.max_link_messages(), 2u);
}

TEST(Mapping, RejectsIndivisibleShapes) {
  EXPECT_THROW(ReplicaMapping(Torus3D(4, 4, 3), MappingScheme::Column),
               RequireError);
  EXPECT_THROW(ReplicaMapping(Torus3D(4, 4, 6), MappingScheme::Mixed, 2),
               RequireError);
}

}  // namespace
}  // namespace acr::topo
