// Scheme-level integration tests (§2.3, Fig. 4/5): strong / medium / weak /
// hard-only recovery semantics, the checksum detection mode, the
// unprotected-window trade-off, escalation, and adaptivity.
#include <gtest/gtest.h>

#include "acr/runtime.h"
#include "apps/jacobi3d.h"
#include "checksum/fletcher.h"
#include "failure/distributions.h"

namespace acr {
namespace {

apps::Jacobi3DConfig jacobi_cfg() {
  apps::Jacobi3DConfig cfg;
  cfg.tasks_x = 2;
  cfg.tasks_y = 2;
  cfg.tasks_z = 2;
  cfg.block_x = 4;
  cfg.block_y = 4;
  cfg.block_z = 4;
  cfg.iterations = 30;
  cfg.slots_per_node = 2;  // 4 nodes per replica
  cfg.seconds_per_point = 1e-5;
  return cfg;
}

AcrConfig fast_acr(ResilienceScheme scheme) {
  AcrConfig cfg;
  cfg.scheme = scheme;
  cfg.checkpoint_interval = 0.004;
  cfg.heartbeat_period = 0.0005;
  cfg.heartbeat_timeout = 0.002;
  return cfg;
}

rt::ClusterConfig cluster_cfg(const apps::Jacobi3DConfig& j, int spares = 2) {
  rt::ClusterConfig cfg;
  cfg.nodes_per_replica = j.nodes_needed();
  cfg.spare_nodes = spares;
  return cfg;
}

std::uint64_t replica_digest(AcrRuntime& runtime, int replica) {
  checksum::Fletcher64 f;
  for (int i = 0; i < runtime.cluster().nodes_per_replica(); ++i) {
    pup::Checkpoint c = runtime.cluster().node_at(replica, i).pack_state();
    f.append(c.bytes());
  }
  return f.digest();
}

std::uint64_t reference_digest() {
  static std::uint64_t cached = [] {
    apps::Jacobi3DConfig j = jacobi_cfg();
    AcrRuntime runtime(fast_acr(ResilienceScheme::Strong), cluster_cfg(j));
    runtime.set_task_factory(j.factory());
    runtime.setup();
    RunSummary s = runtime.run(1e3);
    ACR_REQUIRE(s.complete, "reference run must complete");
    return replica_digest(runtime, 0);
  }();
  return cached;
}

void corrupt(AcrRuntime& runtime, int replica, int node, int slot) {
  auto& task =
      static_cast<apps::Jacobi3DTask&>(runtime.cluster().node_at(replica, node).task(slot));
  task.value_at(1, 2, 1) += 3.0;
  runtime.cluster().trace().record(runtime.engine().now(),
                                   rt::TraceKind::SdcInjected, replica, node);
}

void kill(AcrRuntime& runtime, int replica, int node) {
  runtime.cluster().trace().record(runtime.engine().now(),
                                   rt::TraceKind::HardFailureInjected, replica,
                                   node);
  runtime.cluster().kill_role(replica, node);
}

class SchemeRecovery : public ::testing::TestWithParam<ResilienceScheme> {};

TEST_P(SchemeRecovery, HardFailureRecoversToReferenceState) {
  apps::Jacobi3DConfig j = jacobi_cfg();
  AcrRuntime runtime(fast_acr(GetParam()), cluster_cfg(j));
  runtime.set_task_factory(j.factory());
  runtime.setup();
  runtime.engine().schedule_at(0.006, [&] { kill(runtime, 1, 2); });
  RunSummary s = runtime.run(1e3);
  ASSERT_TRUE(s.complete) << resilience_scheme_name(GetParam());
  EXPECT_EQ(s.hard_failures, 1u);
  EXPECT_EQ(s.recoveries, 1u);
  // Completion fires when the first replica finishes; give the recovered
  // replica (which restarted a little later) time to catch up before
  // comparing final states.
  runtime.engine().run_until(s.finish_time + 0.05);
  EXPECT_EQ(replica_digest(runtime, 0), reference_digest());
  EXPECT_EQ(replica_digest(runtime, 1), reference_digest());
  EXPECT_EQ(runtime.trace().count(rt::TraceKind::RecoveryCompleted), 1u);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SchemeRecovery,
                         ::testing::Values(ResilienceScheme::Strong,
                                           ResilienceScheme::Medium,
                                           ResilienceScheme::Weak,
                                           ResilienceScheme::HardOnly),
                         [](const auto& info) {
                           std::string name =
                               resilience_scheme_name(info.param);
                           // gtest parameter names must be alphanumeric.
                           std::erase(name, '-');
                           return name;
                         });

/// The §2.3 trade-off, demonstrated end-to-end. An SDC lands in the
/// healthy replica just before the other replica suffers a hard failure.
///  * Strong: the corruption is caught at the next comparison (the crashed
///    replica recomputed the interval cleanly) and rolled back — the final
///    state matches the failure-free reference.
///  * Weak/medium: the recovery checkpoint copies the corruption to both
///    replicas; it becomes permanently undetectable — both replicas agree
///    with each other but NOT with the reference.
TEST(UnprotectedWindow, StrongCatchesWhatWeakCommits) {
  auto run_scenario = [&](ResilienceScheme scheme) {
    apps::Jacobi3DConfig j = jacobi_cfg();
    AcrRuntime runtime(fast_acr(scheme), cluster_cfg(j));
    runtime.set_task_factory(j.factory());
    runtime.setup();
    runtime.engine().schedule_at(0.0050, [&] { corrupt(runtime, 0, 1, 0); });
    runtime.engine().schedule_at(0.0052, [&] { kill(runtime, 1, 3); });
    RunSummary s = runtime.run(1e3);
    EXPECT_TRUE(s.complete) << resilience_scheme_name(scheme);
    EXPECT_EQ(replica_digest(runtime, 0), replica_digest(runtime, 1));
    return std::make_pair(replica_digest(runtime, 0), s);
  };

  auto [strong_digest, strong_summary] =
      run_scenario(ResilienceScheme::Strong);
  EXPECT_EQ(strong_digest, reference_digest());
  EXPECT_GE(strong_summary.sdc_detected, 1u);

  auto [weak_digest, weak_summary] = run_scenario(ResilienceScheme::Weak);
  EXPECT_NE(weak_digest, reference_digest());  // silently corrupted result
  EXPECT_EQ(weak_summary.sdc_detected, 0u);

  auto [medium_digest, medium_summary] =
      run_scenario(ResilienceScheme::Medium);
  EXPECT_NE(medium_digest, reference_digest());
  EXPECT_EQ(medium_summary.sdc_detected, 0u);
}

TEST(Detection, ChecksumModeDetectsSdc) {
  apps::Jacobi3DConfig j = jacobi_cfg();
  AcrConfig cfg = fast_acr(ResilienceScheme::Strong);
  cfg.detection = SdcDetection::Checksum;
  AcrRuntime runtime(cfg, cluster_cfg(j));
  runtime.set_task_factory(j.factory());
  runtime.setup();
  runtime.engine().schedule_at(0.005, [&] { corrupt(runtime, 1, 0, 1); });
  RunSummary s = runtime.run(1e3);
  ASSERT_TRUE(s.complete);
  EXPECT_GE(s.sdc_detected, 1u);
  EXPECT_EQ(replica_digest(runtime, 0), reference_digest());
}

TEST(Detection, CorruptionBeforeFirstCheckpointRestartsFromScratch) {
  apps::Jacobi3DConfig j = jacobi_cfg();
  AcrConfig cfg = fast_acr(ResilienceScheme::Strong);
  AcrRuntime runtime(cfg, cluster_cfg(j));
  runtime.set_task_factory(j.factory());
  runtime.setup();
  runtime.engine().schedule_at(0.001, [&] { corrupt(runtime, 0, 0, 0); });
  RunSummary s = runtime.run(1e3);
  ASSERT_TRUE(s.complete);
  EXPECT_GE(s.scratch_restarts, 1u);
  EXPECT_EQ(replica_digest(runtime, 0), reference_digest());
}

TEST(HardOnly, NoPeriodicCheckpoints) {
  apps::Jacobi3DConfig j = jacobi_cfg();
  AcrRuntime runtime(fast_acr(ResilienceScheme::HardOnly), cluster_cfg(j));
  runtime.set_task_factory(j.factory());
  runtime.setup();
  RunSummary s = runtime.run(1e3);
  ASSERT_TRUE(s.complete);
  EXPECT_EQ(s.checkpoints, 0u);
  EXPECT_EQ(runtime.trace().count(rt::TraceKind::CheckpointRequested), 0u);
}

TEST(Recovery, SecondFailureDuringRecoveryEscalates) {
  apps::Jacobi3DConfig j = jacobi_cfg();
  AcrRuntime runtime(fast_acr(ResilienceScheme::Medium), cluster_cfg(j, 3));
  runtime.set_task_factory(j.factory());
  runtime.setup();
  runtime.engine().schedule_at(0.0060, [&] { kill(runtime, 1, 2); });
  // Second failure in the *other* replica while the first is being handled.
  runtime.engine().schedule_at(0.0085, [&] { kill(runtime, 0, 1); });
  RunSummary s = runtime.run(1e3);
  ASSERT_TRUE(s.complete);
  EXPECT_EQ(s.hard_failures, 2u);
  EXPECT_EQ(replica_digest(runtime, 0), reference_digest());
  EXPECT_EQ(replica_digest(runtime, 1), reference_digest());
}

TEST(Recovery, BuddyPairLossRestartsFromScratch) {
  apps::Jacobi3DConfig j = jacobi_cfg();
  AcrRuntime runtime(fast_acr(ResilienceScheme::Strong), cluster_cfg(j, 3));
  runtime.set_task_factory(j.factory());
  runtime.setup();
  // Kill both members of buddy pair 2 nearly simultaneously.
  runtime.engine().schedule_at(0.0060, [&] { kill(runtime, 1, 2); });
  runtime.engine().schedule_at(0.0061, [&] { kill(runtime, 0, 2); });
  RunSummary s = runtime.run(1e3);
  ASSERT_TRUE(s.complete);
  EXPECT_GE(s.scratch_restarts, 1u);
  EXPECT_EQ(replica_digest(runtime, 0), reference_digest());
}

TEST(Recovery, SpareExhaustionFailsTheJob) {
  apps::Jacobi3DConfig j = jacobi_cfg();
  AcrRuntime runtime(fast_acr(ResilienceScheme::Strong),
                     cluster_cfg(j, /*spares=*/0));
  runtime.set_task_factory(j.factory());
  runtime.setup();
  runtime.engine().schedule_at(0.006, [&] { kill(runtime, 0, 0); });
  RunSummary s = runtime.run(1e3);
  EXPECT_TRUE(s.failed);
  EXPECT_FALSE(s.complete);
}

TEST(Adaptivity, IntervalTracksWeibullFailureRate) {
  apps::Jacobi3DConfig j = jacobi_cfg();
  j.iterations = 200;  // longer run so adaptivity has room to act
  AcrConfig cfg = fast_acr(ResilienceScheme::Strong);
  cfg.adaptive = true;
  cfg.adaptive_config.checkpoint_cost = 2e-4;
  cfg.adaptive_config.min_interval = 0.002;
  cfg.adaptive_config.max_interval = 0.05;
  cfg.adaptive_config.window = 4;
  AcrRuntime runtime(cfg, cluster_cfg(j, 8));
  runtime.set_task_factory(j.factory());
  runtime.setup();
  // Decreasing-hazard hard failures (Fig. 12: Weibull shape 0.6).
  FaultPlan plan;
  plan.arrivals = std::make_shared<failure::WeibullProcess>(0.6, 0.004);
  plan.sdc_fraction = 0.0;
  plan.horizon = 0.06;
  runtime.set_fault_plan(plan);
  // Probe the controller's interval while failures are still frequent.
  double early_interval = 0.0;
  runtime.engine().schedule_at(0.055, [&] {
    early_interval = runtime.manager().current_interval();
  });
  RunSummary s = runtime.run(20.0);
  ASSERT_TRUE(s.complete);
  ASSERT_GE(s.hard_failures, 3u);

  // Fig. 12: the interval is short while failures are frequent and
  // stretches as the Weibull hazard decays and the quiet gap grows.
  double late_interval = runtime.manager().current_interval();
  EXPECT_GT(early_interval, 0.0);
  EXPECT_GT(late_interval, early_interval * 1.2);
  EXPECT_GT(s.checkpoints, 10u);
}

}  // namespace
}  // namespace acr
