// Link-load model tests: accumulation, bottleneck analysis, phase time,
// and the replica-bisection behaviour behind Fig. 8's scaling shape.
#include <gtest/gtest.h>

#include "net/link_load.h"
#include "topology/mapping.h"

namespace acr::net {
namespace {

using topo::Coord;
using topo::Dir;
using topo::MappingScheme;
using topo::ReplicaMapping;
using topo::Torus3D;

TEST(LinkLoad, SingleMessageLoadsItsPath) {
  Torus3D t(4, 4, 4);
  LinkLoadModel m(t);
  m.add_message(t.rank_of({0, 0, 0}), t.rank_of({2, 1, 0}), 100.0);
  EXPECT_EQ(m.total_messages(), 1u);
  EXPECT_EQ(m.max_hops(), 3);
  EXPECT_DOUBLE_EQ(m.total_byte_hops(), 300.0);
  EXPECT_DOUBLE_EQ(m.link_bytes(t.link_id({0, 0, 0}, Dir::XPlus)), 100.0);
  EXPECT_DOUBLE_EQ(m.link_bytes(t.link_id({1, 0, 0}, Dir::XPlus)), 100.0);
  EXPECT_DOUBLE_EQ(m.link_bytes(t.link_id({2, 0, 0}, Dir::YPlus)), 100.0);
  EXPECT_DOUBLE_EQ(m.link_bytes(t.link_id({0, 0, 0}, Dir::YPlus)), 0.0);
}

TEST(LinkLoad, SelfMessageIsFree) {
  Torus3D t(2, 2, 2);
  LinkLoadModel m(t);
  m.add_message(3, 3, 1e9);
  EXPECT_EQ(m.total_messages(), 0u);
  EXPECT_DOUBLE_EQ(m.max_link_bytes(), 0.0);
}

TEST(LinkLoad, ClearResets) {
  Torus3D t(2, 2, 2);
  LinkLoadModel m(t);
  m.add_message(0, 1, 10.0);
  m.clear();
  EXPECT_EQ(m.total_messages(), 0u);
  EXPECT_DOUBLE_EQ(m.max_link_bytes(), 0.0);
  EXPECT_EQ(m.max_hops(), 0);
}

TEST(LinkLoad, PhaseTimeIsLatencyPlusBottleneckDrain) {
  Torus3D t(1, 1, 8);
  LinkLoadModel m(t);
  ReplicaMapping rm(t, MappingScheme::Default);
  m.add_traffic(rm.buddy_pairs(), 1000.0);
  NetworkParams p;
  p.alpha = 1e-6;
  p.link_bandwidth = 1e9;
  // Bottleneck link carries 4 messages x 1000 B; longest path is 4 hops.
  EXPECT_NEAR(m.phase_time(p), 4 * 1e-6 + 4000.0 / 1e9, 1e-12);
}

/// The paper's Fig. 8 observation: with the default mapping the bisection
/// load (and hence the transfer time) grows with the Z dimension and
/// saturates once Z stops growing (Z = 32 from 2048 nodes on).
TEST(LinkLoad, DefaultMappingTransferTracksZDimension) {
  NetworkParams p;
  double prev = 0.0;
  std::vector<double> times;
  for (int nodes : {512, 1024, 2048, 4096, 8192}) {
    Torus3D t = topo::bgp_partition(nodes);
    ReplicaMapping rm(t, MappingScheme::Default);
    LinkLoadModel m(t);
    m.add_traffic(rm.buddy_pairs(), 1 << 20);
    times.push_back(m.phase_time(p));
  }
  // Growing while Z grows (512 -> 2048)...
  EXPECT_LT(times[0], times[1]);
  EXPECT_LT(times[1], times[2]);
  // ...then flat once Z saturates.
  EXPECT_NEAR(times[2], times[3], times[2] * 0.01);
  EXPECT_NEAR(times[3], times[4], times[3] * 0.01);
  prev = times[0];
  (void)prev;
}

/// Column mapping keeps the transfer time flat at every scale.
TEST(LinkLoad, ColumnMappingTransferIsScaleInvariant) {
  NetworkParams p;
  std::vector<double> times;
  for (int nodes : {512, 2048, 8192}) {
    Torus3D t = topo::bgp_partition(nodes);
    ReplicaMapping rm(t, MappingScheme::Column);
    LinkLoadModel m(t);
    m.add_traffic(rm.buddy_pairs(), 1 << 20);
    times.push_back(m.phase_time(p));
  }
  EXPECT_NEAR(times[0], times[1], times[0] * 0.01);
  EXPECT_NEAR(times[1], times[2], times[1] * 0.01);
}

TEST(LinkLoad, MappingOrderingDefaultWorstColumnBest) {
  Torus3D t = topo::bgp_partition(2048);
  NetworkParams p;
  auto time_for = [&](MappingScheme s) {
    ReplicaMapping rm(t, s, 2);
    LinkLoadModel m(t);
    m.add_traffic(rm.buddy_pairs(), 1 << 20);
    return m.phase_time(p);
  };
  double def = time_for(MappingScheme::Default);
  double mix = time_for(MappingScheme::Mixed);
  double col = time_for(MappingScheme::Column);
  EXPECT_LT(col, mix);
  EXPECT_LT(mix, def);
}

}  // namespace
}  // namespace acr::net
