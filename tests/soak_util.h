// Shared harness for the fault-soak binaries (xor/burst/tier/delta/rs).
//
// Every soak pins the same contract — seeded fault schedules complete with
// the bitwise fault-free answer — against a different subsystem. The
// boilerplate they share (the jacobi soak workload, the verified-answer
// digest, the fault-free reference run, the run-then-digest epilogue, the
// rack-style burst plan, and the trace scans) lives here; each soak keeps
// only its own configuration and assertions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "acr/runtime.h"
#include "apps/jacobi3d.h"
#include "checksum/fletcher.h"
#include "failure/correlated.h"

namespace acr::soak {

/// The standard soak workload: 16 jacobi tasks, 2 per node -> 8 nodes per
/// replica (two parity groups of 4 under xor/rs), ~40 checkpoints of work.
inline apps::Jacobi3DConfig small_app() {
  apps::Jacobi3DConfig cfg;
  cfg.tasks_x = cfg.tasks_y = 2;
  cfg.tasks_z = 4;
  cfg.block_x = cfg.block_y = cfg.block_z = 4;
  cfg.iterations = 40;
  cfg.slots_per_node = 2;  // 8 nodes per replica
  cfg.seconds_per_point = 1e-5;
  return cfg;
}

/// Multi-chunk variant (delta soak): each node's image spans several
/// 256 KiB digest chunks, so chunk maps, overlays, and the parity delta
/// algebra are actually exercised instead of degenerating to full frames.
inline apps::Jacobi3DConfig multi_chunk_app() {
  apps::Jacobi3DConfig cfg;
  cfg.tasks_x = cfg.tasks_y = 2;
  cfg.tasks_z = 4;
  cfg.block_x = cfg.block_y = 24;
  cfg.block_z = 24;  // ~110 KB per task, 4 tasks/node => image > 2 chunks
  cfg.iterations = 30;
  cfg.slots_per_node = 4;  // 4 nodes per replica
  cfg.seconds_per_point = 2e-7;
  return cfg;
}

/// The protocol baseline every soak starts from: strong scheme, tight
/// interval and heartbeats so kills are detected well within a run.
inline AcrConfig base_acr_config() {
  AcrConfig ac;
  ac.scheme = ResilienceScheme::Strong;
  ac.checkpoint_interval = 0.003;
  ac.heartbeat_period = 0.0004;
  ac.heartbeat_timeout = 0.0016;
  return ac;
}

/// Fletcher-64 over the newest verified image of every node index (taken
/// from whichever replica holds the higher epoch): the "answer" compared
/// bit-for-bit across runs.
inline std::uint64_t verified_digest(AcrRuntime& runtime) {
  checksum::Fletcher64 f;
  for (int i = 0; i < runtime.cluster().nodes_per_replica(); ++i) {
    NodeAgent& a = runtime.agent_at(0, i);
    NodeAgent& b = runtime.agent_at(1, i);
    const NodeAgent& best = a.verified_epoch() >= b.verified_epoch() ? a : b;
    f.append(best.verified_image());
  }
  return f.digest();
}

struct Reference {
  std::uint64_t digest = 0;
  double finish_time = 0.0;
  std::size_t image_bytes = 0;
};

/// Fault-free run under `ac`: fixes the expected answer and the nominal
/// completion time fault schedules are drawn from. Configs differ per
/// soak, so the static caching stays at each call site.
inline Reference make_reference(const apps::Jacobi3DConfig& app,
                                const AcrConfig& ac, const char* what) {
  rt::ClusterConfig cc;
  cc.nodes_per_replica = app.nodes_needed();
  cc.spare_nodes = 0;
  AcrRuntime runtime(ac, cc);
  runtime.set_task_factory(app.factory());
  runtime.setup();
  RunSummary s = runtime.run(1e3);
  ACR_REQUIRE(s.complete, what);
  Reference ref;
  ref.digest = verified_digest(runtime);
  ref.finish_time = s.finish_time;
  ref.image_bytes = runtime.agent_at(0, 0).verified_image().size();
  return ref;
}

/// The rack-style burst plan shared by the burst/tier/delta soaks: a few
/// seeds per nominal run, half the blade following each, repairs returning
/// hardware well within the run.
inline failure::BurstConfig default_burst_config(double nominal_finish) {
  failure::BurstConfig bc;
  bc.seed_mtbf = nominal_finish / 3.0;
  bc.weibull_shape = 0.7;
  bc.follow_prob = 0.5;
  bc.window = 0.001;
  bc.domain_size = 4;
  bc.repair_mean = nominal_finish / 5.0;
  return bc;
}

struct Outcome {
  RunSummary summary;
  std::uint64_t digest = 0;
};

/// Run to completion (or the cap), drain the post-completion events, and
/// digest the verified answer.
inline Outcome run_and_digest(AcrRuntime& runtime,
                              double max_virtual_time = 30.0) {
  Outcome out;
  out.summary = runtime.run(max_virtual_time);
  if (out.summary.complete) {
    runtime.engine().run_until(out.summary.finish_time + 0.05);
    out.digest = verified_digest(runtime);
  }
  return out;
}

/// True when a burst wiped every host of a replica (pool empty, nobody to
/// double onto) — the one failure no checkpoint level can mask.
inline bool hardware_annihilated(AcrRuntime& runtime) {
  for (const auto& e : runtime.trace().events())
    if (e.detail.find("no surviving host") != std::string::npos) return true;
  return false;
}

/// True when a "restart from scratch" rollback fired at or after the first
/// epoch became fully durable on L2 (tier soaks assert this never happens:
/// the ladder must serve a fetch instead).
inline bool scratch_after_first_durable(AcrRuntime& runtime) {
  double first_durable = -1.0;
  for (const auto& e : runtime.trace().events()) {
    if (e.kind == rt::TraceKind::EpochDurable) {
      first_durable = e.time;
      break;
    }
  }
  if (first_durable < 0.0) return false;
  for (const auto& e : runtime.trace().events()) {
    if (e.kind == rt::TraceKind::Rollback && e.time >= first_durable &&
        e.detail.find("restart from scratch") != std::string::npos)
      return true;
  }
  return false;
}

}  // namespace acr::soak
