// Virtual-time event engine tests. These run against whatever lane count
// ACR_ENGINE_LANES selects (CI exercises both serial and laned), so every
// assertion here is part of the serial-equivalence contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "rt/engine.h"

namespace acr::rt {
namespace {

TEST(Engine, FiresInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(3.0, [&] { order.push_back(3); });
  e.schedule_at(1.0, [&] { order.push_back(1); });
  e.schedule_at(2.0, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(e.now(), 3.0);
  EXPECT_EQ(e.events_processed(), 3u);
}

TEST(Engine, TiesBreakFifo) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    e.schedule_at(1.0, [&order, i] { order.push_back(i); });
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

// Deflake guard for the reliable transport: retransmit timers for frames
// sent in the same event all land on identical deadlines. The engine's
// tie-break (strictly increasing EventId, FIFO among equal times) must hold
// through cancel/re-arm churn, or the retransmit order — and with it every
// downstream event in a fuzz run — would depend on container luck.
TEST(Engine, EqualDeadlineTimersSurviveCancelRearmChurn) {
  Engine e;
  std::vector<int> order;
  std::vector<Engine::EventId> ids;
  for (int i = 0; i < 8; ++i)
    ids.push_back(e.schedule_at(1.0, [&order, i] { order.push_back(i); }));
  // Cancel the even timers and re-arm them at the SAME deadline: they must
  // now fire after every surviving odd timer, in re-arm order.
  for (int i = 0; i < 8; i += 2) {
    e.cancel(ids[static_cast<std::size_t>(i)]);
    e.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 5, 7, 0, 2, 4, 6}));
}

TEST(Engine, EventIdsStrictlyIncreaseAcrossCancellations) {
  Engine e;
  Engine::EventId prev = 0;
  for (int i = 0; i < 20; ++i) {
    Engine::EventId id = e.schedule_at(1.0, [] {});
    EXPECT_GT(id, prev);
    prev = id;
    if (i % 3 == 0) e.cancel(id);  // cancellation must not recycle ids
  }
  e.run();
}

TEST(Engine, HandlersCanScheduleMore) {
  Engine e;
  int fired = 0;
  std::function<void()> chain = [&]() {
    ++fired;
    if (fired < 5) e.schedule_after(1.0, chain);
  };
  e.schedule_after(1.0, chain);
  e.run();
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(e.now(), 5.0);
}

TEST(Engine, CancelSuppressesEvent) {
  Engine e;
  bool fired = false;
  auto id = e.schedule_at(1.0, [&] { fired = true; });
  e.cancel(id);
  e.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, CancelUnknownIdIsNoop) {
  Engine e;
  e.cancel(424242);
  bool fired = false;
  e.schedule_at(1.0, [&] { fired = true; });
  e.run();
  EXPECT_TRUE(fired);
}

TEST(Engine, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Engine e;
  std::vector<double> fired;
  for (double t : {0.5, 1.5, 2.5}) e.schedule_at(t, [&fired, t] { fired.push_back(t); });
  std::size_t n = e.run_until(2.0);
  EXPECT_EQ(n, 2u);
  EXPECT_DOUBLE_EQ(e.now(), 2.0);
  EXPECT_EQ(e.pending(), 1u);
}

TEST(Engine, RunUntilSkipsCancelledWithoutOvershooting) {
  Engine e;
  bool late_fired = false;
  auto early = e.schedule_at(1.0, [] {});
  e.schedule_at(5.0, [&] { late_fired = true; });
  e.cancel(early);
  e.run_until(2.0);
  EXPECT_FALSE(late_fired);
  EXPECT_DOUBLE_EQ(e.now(), 2.0);
}

TEST(Engine, RejectsSchedulingInThePast) {
  Engine e;
  e.schedule_at(2.0, [] {});
  e.run();
  EXPECT_THROW(e.schedule_at(1.0, [] {}), RequireError);
}

TEST(Engine, DispatchNeverCopiesHandlers) {
  // Handlers close over checkpoint Buffers and other heavyweight state;
  // the heap must move them through scheduling and dispatch, not copy.
  struct CopyProbe {
    int* copies;
    explicit CopyProbe(int* c) : copies(c) {}
    CopyProbe(const CopyProbe& o) : copies(o.copies) { ++*copies; }
    CopyProbe(CopyProbe&& o) noexcept : copies(o.copies) {}
  };
  Engine e;
  int copies = 0;
  int fired = 0;
  for (double t : {3.0, 1.0, 2.0, 1.5})
    e.schedule_at(t, [p = CopyProbe(&copies), &fired] {
      (void)p;
      ++fired;
    });
  int copies_after_scheduling = copies;
  e.run();
  EXPECT_EQ(fired, 4);
  EXPECT_EQ(copies, copies_after_scheduling);  // zero copies during dispatch
}

TEST(Engine, RejectsNonFiniteTimes) {
  // A NaN deadline is unordered against everything: heap sifts disagree
  // about where it belongs and the queue silently corrupts. Must throw.
  Engine e;
  double nan = std::numeric_limits<double>::quiet_NaN();
  double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(e.schedule_at(nan, [] {}), RequireError);
  EXPECT_THROW(e.schedule_at(inf, [] {}), RequireError);
  EXPECT_THROW(e.schedule_at(-inf, [] {}), RequireError);
  EXPECT_THROW(e.schedule_after(nan, [] {}), RequireError);
  EXPECT_THROW(e.schedule_after(inf, [] {}), RequireError);
  EXPECT_THROW(e.schedule_after(-1.0, [] {}), RequireError);
  // The queue is still intact after the rejections.
  bool fired = false;
  e.schedule_at(1.0, [&] { fired = true; });
  e.run();
  EXPECT_TRUE(fired);
}

TEST(Engine, RunUntilCancelledEventExactlyAtBoundary) {
  Engine e;
  int fired = 0;
  e.schedule_at(1.0, [&] { ++fired; });
  auto at_boundary = e.schedule_at(2.0, [&] { ++fired; });
  e.schedule_at(2.0, [&] { ++fired; });  // survivor at the same instant
  e.schedule_at(3.0, [&] { ++fired; });
  e.cancel(at_boundary);
  EXPECT_EQ(e.run_until(2.0), 2u);  // boundary-cancelled event not counted
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(e.now(), 2.0);
  EXPECT_EQ(e.pending(), 1u);
}

TEST(Engine, RunUntilEmptyQueueFastPath) {
  Engine e;
  EXPECT_EQ(e.run_until(7.0), 0u);
  EXPECT_DOUBLE_EQ(e.now(), 7.0);
  EXPECT_EQ(e.events_processed(), 0u);
  // And again from a non-zero clock with nothing scheduled since.
  EXPECT_EQ(e.run_until(9.0), 0u);
  EXPECT_DOUBLE_EQ(e.now(), 9.0);
}

TEST(Engine, CancelBacklogStaysBoundedForFiredIds) {
  // Watchdogs cancel() timer ids that often fired long ago. The tracked-id
  // set must not grow without bound over a long run.
  Engine e;
  std::vector<Engine::EventId> ids;
  for (int i = 0; i < 500; ++i)
    ids.push_back(e.schedule_at(static_cast<double>(i), [] {}));
  e.run();  // everything fires; all these ids are now stale
  for (Engine::EventId id : ids) e.cancel(id);
  EXPECT_LE(e.cancelled_backlog(), 65u);  // pruned against empty queue

  // Cancellation of genuinely pending events still works after pruning.
  bool fired = false;
  auto pending = e.schedule_after(1.0, [&] { fired = true; });
  for (Engine::EventId id : ids) e.cancel(id);  // more stale churn
  e.cancel(pending);
  e.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, CancelAfterFireHammerHoldsTheDocumentedBound) {
  // Adversarial interleaving: keep a live pending population while
  // relentlessly cancelling ids that already fired. After every cancel the
  // backlog must respect the prune heuristic's own constants — it may
  // exceed the slack-factor line only until the next cancel crosses it.
  Engine e;
  std::vector<Engine::EventId> fired_ids;
  std::vector<Engine::EventId> live_ids;
  double t = 0.0;
  for (int round = 0; round < 40; ++round) {
    for (int i = 0; i < 25; ++i)
      fired_ids.push_back(e.schedule_at(t + 0.1 + i * 0.01, [] {}));
    // A standing population of far-future events keeps pending() > 0 so
    // prunes cannot rely on the empty-queue degenerate case.
    for (int i = 0; i < 5; ++i)
      live_ids.push_back(e.schedule_at(t + 1000.0, [] {}));
    t += 1.0;
    e.run_until(t);  // the 25 near events fire; the far ones stay pending
    for (Engine::EventId id : fired_ids) e.cancel(id);  // all stale now
    std::size_t bound =
        std::max(Engine::kCancelPruneMinBacklog,
                 Engine::kCancelPruneSlackFactor * e.pending()) +
        1;  // +1: the cancel that crosses the line is counted before pruning
    EXPECT_LE(e.cancelled_backlog(), bound) << "round " << round;
  }
  // The far-future population was never cancelled: it must all still fire.
  std::size_t before = e.events_processed();
  e.run();
  EXPECT_EQ(e.events_processed() - before, live_ids.size());
}

}  // namespace
}  // namespace acr::rt
