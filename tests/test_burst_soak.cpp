// Correlated-burst / shrink-to-survive soak.
//
// Property (ISSUE acceptance): under correlated failure bursts with node
// repair and --degrade=shrink, the job always makes forward progress —
// every seeded run completes (no aborts, no wedges) and its verified
// answer is bitwise identical to the fault-free answer (the app RNG is
// seeded by logical position, so doubling roles onto surviving hardware
// must not perturb a single bit). Zero-fault control seeds additionally
// pin the burst-free pipeline to the same digest.
//
// Runs under the `burst-soak` ctest label (CI runs it with ASan/UBSan).
#include <gtest/gtest.h>

#include "acr/runtime.h"
#include "apps/jacobi3d.h"
#include "checksum/fletcher.h"
#include "failure/correlated.h"

namespace acr {
namespace {

apps::Jacobi3DConfig soak_app() {
  apps::Jacobi3DConfig cfg;
  cfg.tasks_x = cfg.tasks_y = 2;
  cfg.tasks_z = 4;
  cfg.block_x = cfg.block_y = cfg.block_z = 4;
  cfg.iterations = 40;
  cfg.slots_per_node = 2;  // 8 nodes per replica
  cfg.seconds_per_point = 1e-5;
  return cfg;
}

AcrConfig soak_acr_config() {
  AcrConfig ac;
  ac.scheme = ResilienceScheme::Strong;
  ac.redundancy = ckpt::Scheme::Partner;
  ac.degrade = DegradeMode::Shrink;
  ac.checkpoint_interval = 0.003;
  ac.heartbeat_period = 0.0004;
  ac.heartbeat_timeout = 0.0016;
  return ac;
}

std::uint64_t verified_digest(AcrRuntime& runtime) {
  checksum::Fletcher64 f;
  for (int i = 0; i < runtime.cluster().nodes_per_replica(); ++i) {
    NodeAgent& a = runtime.agent_at(0, i);
    NodeAgent& b = runtime.agent_at(1, i);
    const NodeAgent& best = a.verified_epoch() >= b.verified_epoch() ? a : b;
    f.append(best.verified_image());
  }
  return f.digest();
}

struct Reference {
  std::uint64_t digest = 0;
  double finish_time = 0.0;
};

/// Fault-free run fixing the expected answer and nominal duration.
const Reference& reference() {
  static Reference cached = [] {
    apps::Jacobi3DConfig j = soak_app();
    rt::ClusterConfig cc;
    cc.nodes_per_replica = j.nodes_needed();
    cc.spare_nodes = 0;
    AcrRuntime runtime(soak_acr_config(), cc);
    runtime.set_task_factory(j.factory());
    runtime.setup();
    RunSummary s = runtime.run(1e3);
    ACR_REQUIRE(s.complete, "burst soak reference run must complete");
    Reference ref;
    ref.digest = verified_digest(runtime);
    ref.finish_time = s.finish_time;
    return ref;
  }();
  return cached;
}

struct SoakOutcome {
  RunSummary summary;
  std::uint64_t digest = 0;
};

SoakOutcome soak_run(std::uint64_t seed, bool inject) {
  apps::Jacobi3DConfig j = soak_app();
  rt::ClusterConfig cc;
  cc.nodes_per_replica = j.nodes_needed();
  cc.spare_nodes = 2;  // a shallow pool: bursts WILL exhaust it
  cc.seed = seed;
  AcrRuntime runtime(soak_acr_config(), cc);
  runtime.set_task_factory(j.factory());
  runtime.setup();
  if (inject) {
    // A few rack-style bursts per nominal run, half the blade following
    // each seed, repairs returning hardware well within the run.
    failure::BurstConfig bc;
    bc.seed_mtbf = reference().finish_time / 3.0;
    bc.weibull_shape = 0.7;
    bc.follow_prob = 0.5;
    bc.window = 0.001;
    bc.domain_size = 4;
    bc.repair_mean = reference().finish_time / 5.0;
    runtime.set_burst_plan(bc);
  }
  SoakOutcome out;
  out.summary = runtime.run(/*max_virtual_time=*/30.0);
  if (out.summary.complete) {
    runtime.engine().run_until(out.summary.finish_time + 0.05);
    out.digest = verified_digest(runtime);
  }
  return out;
}

class BurstSoak : public ::testing::TestWithParam<int> {};

TEST_P(BurstSoak, ShrinkToSurviveMakesForwardProgressBitwise) {
  std::uint64_t seed = 430000 + static_cast<std::uint64_t>(GetParam()) * 7717;
  SoakOutcome o = soak_run(seed, /*inject=*/true);
  ASSERT_TRUE(o.summary.complete)
      << "aborted or wedged at t=" << o.summary.finish_time << " (seed "
      << seed << ", kills=" << o.summary.burst_node_kills
      << ", doubled=" << o.summary.roles_doubled
      << ", repairs=" << o.summary.spare_repairs << ")";
  EXPECT_FALSE(o.summary.failed);
  EXPECT_EQ(o.digest, reference().digest) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, BurstSoak, ::testing::Range(0, 100));

/// Zero-fault control seeds: the burst-free pipeline (lifecycle code
/// compiled in, injection off) reproduces the reference answer bitwise.
class BurstSoakControl : public ::testing::TestWithParam<int> {};

TEST_P(BurstSoakControl, CleanSeedsMatchReferenceBitwise) {
  std::uint64_t seed = 990000 + static_cast<std::uint64_t>(GetParam()) * 131;
  SoakOutcome o = soak_run(seed, /*inject=*/false);
  ASSERT_TRUE(o.summary.complete);
  EXPECT_EQ(o.summary.burst_node_kills, 0u);
  EXPECT_EQ(o.summary.roles_doubled, 0u);
  EXPECT_EQ(o.digest, reference().digest) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, BurstSoakControl,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace acr
