// Correlated-burst / shrink-to-survive soak.
//
// Property (ISSUE acceptance): under correlated failure bursts with node
// repair and --degrade=shrink, the job always makes forward progress —
// every seeded run completes (no aborts, no wedges) and its verified
// answer is bitwise identical to the fault-free answer (the app RNG is
// seeded by logical position, so doubling roles onto surviving hardware
// must not perturb a single bit). Zero-fault control seeds additionally
// pin the burst-free pipeline to the same digest.
//
// Runs under the `burst-soak` ctest label (CI runs it with ASan/UBSan).
#include <gtest/gtest.h>

#include "acr/runtime.h"
#include "apps/jacobi3d.h"
#include "soak_util.h"

namespace acr {
namespace {

AcrConfig soak_acr_config() {
  AcrConfig ac = soak::base_acr_config();
  ac.redundancy = ckpt::Scheme::Partner;
  ac.degrade = DegradeMode::Shrink;
  return ac;
}

/// Fault-free run fixing the expected answer and nominal duration.
const soak::Reference& reference() {
  static soak::Reference cached = soak::make_reference(
      soak::small_app(), soak_acr_config(),
      "burst soak reference run must complete");
  return cached;
}

soak::Outcome soak_run(std::uint64_t seed, bool inject) {
  apps::Jacobi3DConfig j = soak::small_app();
  rt::ClusterConfig cc;
  cc.nodes_per_replica = j.nodes_needed();
  cc.spare_nodes = 2;  // a shallow pool: bursts WILL exhaust it
  cc.seed = seed;
  AcrRuntime runtime(soak_acr_config(), cc);
  runtime.set_task_factory(j.factory());
  runtime.setup();
  if (inject)
    runtime.set_burst_plan(soak::default_burst_config(reference().finish_time));
  return soak::run_and_digest(runtime);
}

class BurstSoak : public ::testing::TestWithParam<int> {};

TEST_P(BurstSoak, ShrinkToSurviveMakesForwardProgressBitwise) {
  std::uint64_t seed = 430000 + static_cast<std::uint64_t>(GetParam()) * 7717;
  soak::Outcome o = soak_run(seed, /*inject=*/true);
  ASSERT_TRUE(o.summary.complete)
      << "aborted or wedged at t=" << o.summary.finish_time << " (seed "
      << seed << ", kills=" << o.summary.burst_node_kills
      << ", doubled=" << o.summary.roles_doubled
      << ", repairs=" << o.summary.spare_repairs << ")";
  EXPECT_FALSE(o.summary.failed);
  EXPECT_EQ(o.digest, reference().digest) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, BurstSoak, ::testing::Range(0, 100));

/// Zero-fault control seeds: the burst-free pipeline (lifecycle code
/// compiled in, injection off) reproduces the reference answer bitwise.
class BurstSoakControl : public ::testing::TestWithParam<int> {};

TEST_P(BurstSoakControl, CleanSeedsMatchReferenceBitwise) {
  std::uint64_t seed = 990000 + static_cast<std::uint64_t>(GetParam()) * 131;
  soak::Outcome o = soak_run(seed, /*inject=*/false);
  ASSERT_TRUE(o.summary.complete);
  EXPECT_EQ(o.summary.burst_node_kills, 0u);
  EXPECT_EQ(o.summary.roles_doubled, 0u);
  EXPECT_EQ(o.digest, reference().digest) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, BurstSoakControl,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace acr
