// Randomized fault-injection fuzzing of the whole framework.
//
// Property: under the strong scheme with enough spares, a job subjected to
// ANY mix of bit flips and fail-stop crashes either completes with the
// exact failure-free answer (bitwise) or fails gracefully when the spare
// pool is exhausted — it never hangs, never commits a wrong answer.
// Medium/weak may commit corrupted answers (their documented trade-off)
// but must never hang either.
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "acr/runtime.h"
#include "apps/jacobi3d.h"
#include "checksum/fletcher.h"
#include "common/rng.h"
#include "failure/distributions.h"

namespace acr {
namespace {

apps::Jacobi3DConfig fuzz_app() {
  apps::Jacobi3DConfig cfg;
  cfg.tasks_x = cfg.tasks_y = 2;
  cfg.tasks_z = 4;
  cfg.block_x = cfg.block_y = cfg.block_z = 4;
  cfg.iterations = 40;
  cfg.slots_per_node = 2;  // 8 nodes per replica
  cfg.seconds_per_point = 1e-5;
  return cfg;
}

/// Digest of a replica's live state (reference run: no faults in flight).
std::uint64_t replica_digest(AcrRuntime& runtime, int replica) {
  checksum::Fletcher64 f;
  for (int i = 0; i < runtime.cluster().nodes_per_replica(); ++i)
    f.append(runtime.cluster().node_at(replica, i).pack_state().bytes());
  return f.digest();
}

/// Digest of the job's *verified* answer. Each node's state is held by two
/// buddies; a node killed between the final pack and its commit keeps a
/// stale copy, but its buddy holds the verified one — exactly the
/// redundancy the scheme provides. Take the fresher copy per node index.
/// (Live state may also legitimately differ when a bit flip lands after
/// the final verification pack; the verified images are what the job
/// delivers.)
std::uint64_t verified_digest(AcrRuntime& runtime) {
  checksum::Fletcher64 f;
  for (int i = 0; i < runtime.cluster().nodes_per_replica(); ++i) {
    NodeAgent& a = runtime.agent_at(0, i);
    NodeAgent& b = runtime.agent_at(1, i);
    const NodeAgent& best = a.verified_epoch() >= b.verified_epoch() ? a : b;
    f.append(best.verified_image());
  }
  return f.digest();
}

std::uint64_t reference_digest() {
  static std::uint64_t cached = [] {
    apps::Jacobi3DConfig j = fuzz_app();
    AcrConfig ac;
    ac.checkpoint_interval = 0.003;
    rt::ClusterConfig cc;
    cc.nodes_per_replica = j.nodes_needed();
    cc.spare_nodes = 0;
    AcrRuntime runtime(ac, cc);
    runtime.set_task_factory(j.factory());
    runtime.setup();
    RunSummary s = runtime.run(1e3);
    ACR_REQUIRE(s.complete, "fuzz reference run must complete");
    // Live state and verified images agree in a fault-free run; digest the
    // verified images so the comparison is like-for-like.
    std::uint64_t live = replica_digest(runtime, 0);
    std::uint64_t verified = verified_digest(runtime);
    ACR_REQUIRE(live == verified, "reference live/verified divergence");
    return verified;
  }();
  return cached;
}

struct FuzzOutcome {
  RunSummary summary;
  std::uint64_t digest = 0;
};

FuzzOutcome fuzz_run(ResilienceScheme scheme, std::uint64_t seed,
                     double fault_mtbf, double sdc_fraction) {
  apps::Jacobi3DConfig j = fuzz_app();
  AcrConfig ac;
  ac.scheme = scheme;
  ac.checkpoint_interval = 0.003;
  ac.heartbeat_period = 0.0004;
  ac.heartbeat_timeout = 0.0016;
  rt::ClusterConfig cc;
  cc.nodes_per_replica = j.nodes_needed();
  cc.spare_nodes = 16;
  cc.seed = seed;
  AcrRuntime runtime(ac, cc);
  runtime.set_task_factory(j.factory());
  runtime.setup();
  FaultPlan plan;
  plan.arrivals = std::make_shared<failure::RenewalProcess>(
      std::make_shared<failure::Exponential>(fault_mtbf));
  plan.sdc_fraction = sdc_fraction;
  runtime.set_fault_plan(plan);

  FuzzOutcome out;
  out.summary = runtime.run(/*max_virtual_time=*/30.0);
  if (out.summary.complete) {
    // Let the in-flight commit/promotion messages of the final
    // verification land before reading the verified images.
    runtime.engine().run_until(out.summary.finish_time + 0.05);
    out.digest = verified_digest(runtime);
  }
  return out;
}

class FaultFuzz : public ::testing::TestWithParam<int> {};

TEST_P(FaultFuzz, StrongSchemeNeverCommitsWrongAnswer) {
  std::uint64_t seed = 1000 + static_cast<std::uint64_t>(GetParam()) * 7919;
  // Mixed faults arriving a few times per checkpoint-interval-decade.
  FuzzOutcome o = fuzz_run(ResilienceScheme::Strong, seed,
                           /*fault_mtbf=*/0.008, /*sdc_fraction=*/0.5);
  // Never hang: either done or failed by spare exhaustion.
  ASSERT_TRUE(o.summary.complete || o.summary.failed)
      << "wedged at t=" << o.summary.finish_time << " (seed " << seed << ")";
  if (o.summary.complete) {
    EXPECT_EQ(o.digest, reference_digest()) << "seed " << seed;
  }
}

TEST_P(FaultFuzz, MediumAndWeakNeverHang) {
  std::uint64_t seed = 5000 + static_cast<std::uint64_t>(GetParam()) * 104729;
  for (ResilienceScheme scheme :
       {ResilienceScheme::Medium, ResilienceScheme::Weak}) {
    FuzzOutcome o = fuzz_run(scheme, seed, /*fault_mtbf=*/0.010,
                             /*sdc_fraction=*/0.3);
    ASSERT_TRUE(o.summary.complete || o.summary.failed)
        << resilience_scheme_name(scheme) << " wedged (seed " << seed << ")";
    if (o.summary.complete) {
      // Whatever they commit, a verified answer exists (possibly silently
      // corrupted — the weak/medium trade-off — but internally coherent).
      EXPECT_NE(o.digest, 0u)
          << resilience_scheme_name(scheme) << " seed " << seed;
    }
  }
}

TEST_P(FaultFuzz, HardFailureStormIsSurvivedOrFailsCleanly) {
  std::uint64_t seed = 9000 + static_cast<std::uint64_t>(GetParam()) * 31337;
  FuzzOutcome o = fuzz_run(ResilienceScheme::Strong, seed,
                           /*fault_mtbf=*/0.004, /*sdc_fraction=*/0.0);
  ASSERT_TRUE(o.summary.complete || o.summary.failed) << "seed " << seed;
  if (o.summary.complete) {
    EXPECT_EQ(o.digest, reference_digest()) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultFuzz, ::testing::Range(0, 10));

// ---------------------------------------------------------------------------
// Network-fault fuzzing: the reliable transport under randomized loss,
// duplication, reordering, and corruption schedules.
//
// Property: network faults alone are invisible to the job. Every run
// completes, no task's completed-iteration count ever moves backwards (a
// regression here means a duplicated or reordered control message caused a
// spurious rollback or epoch reset), and the final verified answer is
// bitwise identical to a fault-free run's.
// ---------------------------------------------------------------------------

/// Smaller app than fuzz_app(): the network fuzz sweeps 200+ seeds, so each
/// run must stay cheap. 8 tasks on 4 nodes per replica.
apps::Jacobi3DConfig net_fuzz_app() {
  apps::Jacobi3DConfig cfg;
  cfg.tasks_x = cfg.tasks_y = 2;
  cfg.tasks_z = 2;
  cfg.block_x = cfg.block_y = cfg.block_z = 4;
  cfg.iterations = 25;
  cfg.slots_per_node = 2;  // 4 nodes per replica
  cfg.seconds_per_point = 1e-5;
  return cfg;
}

/// Fault-free verified digest for net_fuzz_app under `scheme` (cached — the
/// answer is scheme-independent in a fault-free run, but computing it per
/// scheme keeps the comparison honest about it).
std::uint64_t net_reference_digest(ResilienceScheme scheme) {
  static std::map<ResilienceScheme, std::uint64_t> cached;
  auto it = cached.find(scheme);
  if (it != cached.end()) return it->second;
  apps::Jacobi3DConfig j = net_fuzz_app();
  AcrConfig ac;
  ac.scheme = scheme;
  ac.checkpoint_interval = 0.003;
  rt::ClusterConfig cc;
  cc.nodes_per_replica = j.nodes_needed();
  cc.spare_nodes = 0;
  AcrRuntime runtime(ac, cc);
  runtime.set_task_factory(j.factory());
  runtime.setup();
  RunSummary s = runtime.run(1e3);
  ACR_REQUIRE(s.complete, "net fuzz reference run must complete");
  std::uint64_t digest = verified_digest(runtime);
  cached[scheme] = digest;
  return digest;
}

/// Samples every live task's completed-iteration count on a fixed cadence
/// and counts regressions. Arm only for runs without node faults: rollbacks
/// legitimately rewind progress.
class ProgressMonotonicitySampler {
 public:
  ProgressMonotonicitySampler(AcrRuntime& runtime, double period)
      : runtime_(runtime), period_(period) {}

  void start() { arm(); }
  int violations() const { return violations_; }

 private:
  void arm() {
    runtime_.engine().schedule_after(period_, [this] {
      sample();
      arm();
    });
  }
  void sample() {
    rt::Cluster& c = runtime_.cluster();
    for (int r = 0; r < 2; ++r)
      for (int i = 0; i < c.nodes_per_replica(); ++i) {
        rt::Node& n = c.node_at(r, i);
        if (!n.alive()) continue;
        for (int s = 0; s < n.num_tasks(); ++s) {
          std::uint64_t& prev = last_[std::make_tuple(r, i, s)];
          std::uint64_t cur = n.task_progress(s);
          if (cur < prev) ++violations_;
          if (cur > prev) prev = cur;
        }
      }
  }

  AcrRuntime& runtime_;
  double period_;
  std::map<std::tuple<int, int, int>, std::uint64_t> last_;
  int violations_ = 0;
};

/// One randomized network-fault run. Rates are drawn from the seed: loss up
/// to 5%, duplication up to 3%, extra-latency reordering up to 30%, bit
/// corruption up to 2%. `fault_mtbf > 0` additionally injects node faults
/// (and disarms the monotonicity assertion).
FuzzOutcome net_fuzz_run(ResilienceScheme scheme, std::uint64_t seed,
                         double fault_mtbf, int* monotone_violations) {
  apps::Jacobi3DConfig j = net_fuzz_app();
  AcrConfig ac;
  ac.scheme = scheme;
  ac.checkpoint_interval = 0.003;
  ac.heartbeat_period = 0.0004;
  ac.heartbeat_timeout = 0.0016;
  rt::ClusterConfig cc;
  cc.nodes_per_replica = j.nodes_needed();
  cc.spare_nodes = fault_mtbf > 0.0 ? 16 : 2;
  cc.seed = seed;
  Pcg32 rates(seed, 0x4E7F);
  cc.net_faults.drop_rate = 0.05 * rates.uniform();
  cc.net_faults.dup_rate = 0.03 * rates.uniform();
  cc.net_faults.reorder_rate = 0.30 * rates.uniform();
  cc.net_faults.corrupt_rate = 0.02 * rates.uniform();
  cc.net_faults.reorder_max_extra = 5e-5 + 2e-4 * rates.uniform();
  AcrRuntime runtime(ac, cc);
  runtime.set_task_factory(j.factory());
  runtime.setup();
  if (fault_mtbf > 0.0) {
    FaultPlan plan;
    plan.arrivals = std::make_shared<failure::RenewalProcess>(
        std::make_shared<failure::Exponential>(fault_mtbf));
    plan.sdc_fraction = 0.3;
    runtime.set_fault_plan(plan);
  }
  ProgressMonotonicitySampler sampler(runtime, 2.5e-4);
  if (monotone_violations) sampler.start();

  FuzzOutcome out;
  out.summary = runtime.run(/*max_virtual_time=*/30.0);
  if (out.summary.complete) {
    runtime.engine().run_until(out.summary.finish_time + 0.05);
    out.digest = verified_digest(runtime);
  }
  if (monotone_violations) *monotone_violations = sampler.violations();
  return out;
}

class NetFuzz : public ::testing::TestWithParam<int> {};

TEST_P(NetFuzz, LossyNetworkIsInvisibleToTheJob) {
  int param = GetParam();
  std::uint64_t seed = 40000 + static_cast<std::uint64_t>(param) * 6151;
  ResilienceScheme scheme = param % 3 == 0   ? ResilienceScheme::Strong
                            : param % 3 == 1 ? ResilienceScheme::Medium
                                             : ResilienceScheme::Weak;
  int violations = -1;
  FuzzOutcome o = net_fuzz_run(scheme, seed, /*fault_mtbf=*/0.0, &violations);
  ASSERT_TRUE(o.summary.complete)
      << resilience_scheme_name(scheme) << " wedged at t="
      << o.summary.finish_time << " (seed " << seed << ")";
  EXPECT_EQ(violations, 0) << "progress moved backwards (seed " << seed << ")";
  EXPECT_EQ(o.digest, net_reference_digest(scheme)) << "seed " << seed;
  // No link between live endpoints may exhaust its retry budget at these
  // rates, so the degradation path must never fire.
  EXPECT_EQ(o.summary.net_link_failures, 0u) << "seed " << seed;
  EXPECT_EQ(o.summary.scratch_restarts, 0u) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetFuzz, ::testing::Range(0, 210));

class NetStorm : public ::testing::TestWithParam<int> {};

TEST_P(NetStorm, NodeFaultsUnderLossyNetworkSurviveOrFailCleanly) {
  std::uint64_t seed = 80000 + static_cast<std::uint64_t>(GetParam()) * 26947;
  FuzzOutcome o = net_fuzz_run(ResilienceScheme::Strong, seed,
                               /*fault_mtbf=*/0.008, nullptr);
  ASSERT_TRUE(o.summary.complete || o.summary.failed)
      << "wedged at t=" << o.summary.finish_time << " (seed " << seed << ")";
  if (o.summary.complete) {
    EXPECT_EQ(o.digest, net_reference_digest(ResilienceScheme::Strong))
        << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetStorm, ::testing::Range(0, 20));

}  // namespace
}  // namespace acr
