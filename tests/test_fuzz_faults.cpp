// Randomized fault-injection fuzzing of the whole framework.
//
// Property: under the strong scheme with enough spares, a job subjected to
// ANY mix of bit flips and fail-stop crashes either completes with the
// exact failure-free answer (bitwise) or fails gracefully when the spare
// pool is exhausted — it never hangs, never commits a wrong answer.
// Medium/weak may commit corrupted answers (their documented trade-off)
// but must never hang either.
#include <gtest/gtest.h>

#include "acr/runtime.h"
#include "apps/jacobi3d.h"
#include "checksum/fletcher.h"
#include "failure/distributions.h"

namespace acr {
namespace {

apps::Jacobi3DConfig fuzz_app() {
  apps::Jacobi3DConfig cfg;
  cfg.tasks_x = cfg.tasks_y = 2;
  cfg.tasks_z = 4;
  cfg.block_x = cfg.block_y = cfg.block_z = 4;
  cfg.iterations = 40;
  cfg.slots_per_node = 2;  // 8 nodes per replica
  cfg.seconds_per_point = 1e-5;
  return cfg;
}

/// Digest of a replica's live state (reference run: no faults in flight).
std::uint64_t replica_digest(AcrRuntime& runtime, int replica) {
  checksum::Fletcher64 f;
  for (int i = 0; i < runtime.cluster().nodes_per_replica(); ++i)
    f.append(runtime.cluster().node_at(replica, i).pack_state().bytes());
  return f.digest();
}

/// Digest of the job's *verified* answer. Each node's state is held by two
/// buddies; a node killed between the final pack and its commit keeps a
/// stale copy, but its buddy holds the verified one — exactly the
/// redundancy the scheme provides. Take the fresher copy per node index.
/// (Live state may also legitimately differ when a bit flip lands after
/// the final verification pack; the verified images are what the job
/// delivers.)
std::uint64_t verified_digest(AcrRuntime& runtime) {
  checksum::Fletcher64 f;
  for (int i = 0; i < runtime.cluster().nodes_per_replica(); ++i) {
    NodeAgent& a = runtime.agent_at(0, i);
    NodeAgent& b = runtime.agent_at(1, i);
    const NodeAgent& best = a.verified_epoch() >= b.verified_epoch() ? a : b;
    f.append(best.verified_image());
  }
  return f.digest();
}

std::uint64_t reference_digest() {
  static std::uint64_t cached = [] {
    apps::Jacobi3DConfig j = fuzz_app();
    AcrConfig ac;
    ac.checkpoint_interval = 0.003;
    rt::ClusterConfig cc;
    cc.nodes_per_replica = j.nodes_needed();
    cc.spare_nodes = 0;
    AcrRuntime runtime(ac, cc);
    runtime.set_task_factory(j.factory());
    runtime.setup();
    RunSummary s = runtime.run(1e3);
    ACR_REQUIRE(s.complete, "fuzz reference run must complete");
    // Live state and verified images agree in a fault-free run; digest the
    // verified images so the comparison is like-for-like.
    std::uint64_t live = replica_digest(runtime, 0);
    std::uint64_t verified = verified_digest(runtime);
    ACR_REQUIRE(live == verified, "reference live/verified divergence");
    return verified;
  }();
  return cached;
}

struct FuzzOutcome {
  RunSummary summary;
  std::uint64_t digest = 0;
};

FuzzOutcome fuzz_run(ResilienceScheme scheme, std::uint64_t seed,
                     double fault_mtbf, double sdc_fraction) {
  apps::Jacobi3DConfig j = fuzz_app();
  AcrConfig ac;
  ac.scheme = scheme;
  ac.checkpoint_interval = 0.003;
  ac.heartbeat_period = 0.0004;
  ac.heartbeat_timeout = 0.0016;
  rt::ClusterConfig cc;
  cc.nodes_per_replica = j.nodes_needed();
  cc.spare_nodes = 16;
  cc.seed = seed;
  AcrRuntime runtime(ac, cc);
  runtime.set_task_factory(j.factory());
  runtime.setup();
  FaultPlan plan;
  plan.arrivals = std::make_shared<failure::RenewalProcess>(
      std::make_shared<failure::Exponential>(fault_mtbf));
  plan.sdc_fraction = sdc_fraction;
  runtime.set_fault_plan(plan);

  FuzzOutcome out;
  out.summary = runtime.run(/*max_virtual_time=*/30.0);
  if (out.summary.complete) {
    // Let the in-flight commit/promotion messages of the final
    // verification land before reading the verified images.
    runtime.engine().run_until(out.summary.finish_time + 0.05);
    out.digest = verified_digest(runtime);
  }
  return out;
}

class FaultFuzz : public ::testing::TestWithParam<int> {};

TEST_P(FaultFuzz, StrongSchemeNeverCommitsWrongAnswer) {
  std::uint64_t seed = 1000 + static_cast<std::uint64_t>(GetParam()) * 7919;
  // Mixed faults arriving a few times per checkpoint-interval-decade.
  FuzzOutcome o = fuzz_run(ResilienceScheme::Strong, seed,
                           /*fault_mtbf=*/0.008, /*sdc_fraction=*/0.5);
  // Never hang: either done or failed by spare exhaustion.
  ASSERT_TRUE(o.summary.complete || o.summary.failed)
      << "wedged at t=" << o.summary.finish_time << " (seed " << seed << ")";
  if (o.summary.complete) {
    EXPECT_EQ(o.digest, reference_digest()) << "seed " << seed;
  }
}

TEST_P(FaultFuzz, MediumAndWeakNeverHang) {
  std::uint64_t seed = 5000 + static_cast<std::uint64_t>(GetParam()) * 104729;
  for (ResilienceScheme scheme :
       {ResilienceScheme::Medium, ResilienceScheme::Weak}) {
    FuzzOutcome o = fuzz_run(scheme, seed, /*fault_mtbf=*/0.010,
                             /*sdc_fraction=*/0.3);
    ASSERT_TRUE(o.summary.complete || o.summary.failed)
        << resilience_scheme_name(scheme) << " wedged (seed " << seed << ")";
    if (o.summary.complete) {
      // Whatever they commit, a verified answer exists (possibly silently
      // corrupted — the weak/medium trade-off — but internally coherent).
      EXPECT_NE(o.digest, 0u)
          << resilience_scheme_name(scheme) << " seed " << seed;
    }
  }
}

TEST_P(FaultFuzz, HardFailureStormIsSurvivedOrFailsCleanly) {
  std::uint64_t seed = 9000 + static_cast<std::uint64_t>(GetParam()) * 31337;
  FuzzOutcome o = fuzz_run(ResilienceScheme::Strong, seed,
                           /*fault_mtbf=*/0.004, /*sdc_fraction=*/0.0);
  ASSERT_TRUE(o.summary.complete || o.summary.failed) << "seed " << seed;
  if (o.summary.complete) {
    EXPECT_EQ(o.digest, reference_digest()) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultFuzz, ::testing::Range(0, 10));

}  // namespace
}  // namespace acr
