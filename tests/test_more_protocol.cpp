// Additional protocol- and app-level properties: periodic spacing, the
// verify_at_completion switch, feature composition (semi-blocking +
// adaptive + prediction), and numerical sanity of the Jacobi solver.
#include <gtest/gtest.h>

#include "acr/runtime.h"
#include "apps/jacobi3d.h"
#include "failure/distributions.h"

namespace acr {
namespace {

apps::Jacobi3DConfig app_cfg(std::uint64_t iterations = 40) {
  apps::Jacobi3DConfig cfg;
  cfg.tasks_x = cfg.tasks_y = cfg.tasks_z = 2;
  cfg.block_x = cfg.block_y = cfg.block_z = 4;
  cfg.iterations = iterations;
  cfg.slots_per_node = 2;
  cfg.seconds_per_point = 1e-5;
  return cfg;
}

TEST(Protocol, CommitsAreSpacedByTheConfiguredInterval) {
  apps::Jacobi3DConfig j = app_cfg(60);
  AcrConfig ac;
  ac.checkpoint_interval = 0.004;
  rt::ClusterConfig cc;
  cc.nodes_per_replica = j.nodes_needed();
  cc.spare_nodes = 0;
  AcrRuntime runtime(ac, cc);
  runtime.set_task_factory(j.factory());
  runtime.setup();
  RunSummary s = runtime.run(100.0);
  ASSERT_TRUE(s.complete);
  std::vector<double> commits;
  for (const auto& e : runtime.trace().events())
    if (e.kind == rt::TraceKind::CheckpointCommitted) commits.push_back(e.time);
  ASSERT_GE(commits.size(), 4u);
  // Gaps are interval + protocol latency; never shorter than the interval
  // and never more than ~50% longer (the final verification checkpoint can
  // fire early, so stop before the last gap).
  for (std::size_t i = 1; i + 1 < commits.size(); ++i) {
    double gap = commits[i] - commits[i - 1];
    EXPECT_GE(gap, ac.checkpoint_interval * 0.99) << "gap " << i;
    EXPECT_LE(gap, ac.checkpoint_interval * 1.5) << "gap " << i;
  }
}

TEST(Protocol, VerifyAtCompletionOffMatchesPaperSemantics) {
  apps::Jacobi3DConfig j = app_cfg();
  AcrConfig ac;
  ac.checkpoint_interval = 0.004;
  ac.verify_at_completion = false;
  rt::ClusterConfig cc;
  cc.nodes_per_replica = j.nodes_needed();
  cc.spare_nodes = 0;
  AcrRuntime runtime(ac, cc);
  runtime.set_task_factory(j.factory());
  runtime.setup();
  RunSummary s = runtime.run(100.0);
  ASSERT_TRUE(s.complete);
  // Completion declared by the first finished replica, not by a final
  // verification epoch.
  const rt::TraceEvent* done =
      runtime.trace().find_first(rt::TraceKind::JobComplete);
  ASSERT_NE(done, nullptr);
  EXPECT_EQ(done->detail, "replica finished");
}

TEST(Protocol, VerifyAtCompletionOnEmitsVerifiedResult) {
  apps::Jacobi3DConfig j = app_cfg();
  AcrConfig ac;
  ac.checkpoint_interval = 0.004;
  rt::ClusterConfig cc;
  cc.nodes_per_replica = j.nodes_needed();
  cc.spare_nodes = 0;
  AcrRuntime runtime(ac, cc);
  runtime.set_task_factory(j.factory());
  runtime.setup();
  RunSummary s = runtime.run(100.0);
  ASSERT_TRUE(s.complete);
  const rt::TraceEvent* done =
      runtime.trace().find_first(rt::TraceKind::JobComplete);
  ASSERT_NE(done, nullptr);
  EXPECT_EQ(done->detail, "verified result");
  // The final verification is the last committed epoch.
  double last_commit = 0.0;
  for (const auto& e : runtime.trace().events())
    if (e.kind == rt::TraceKind::CheckpointCommitted) last_commit = e.time;
  EXPECT_LE(last_commit, done->time + 1e-9);
  EXPECT_GT(last_commit, 0.0);
}

TEST(Protocol, AllFeaturesComposeUnderFaults) {
  // Semi-blocking + adaptive interval + failure prediction + checksum
  // detection, with a mixed fault storm: must terminate correctly.
  apps::Jacobi3DConfig j = app_cfg(60);
  AcrConfig ac;
  ac.scheme = ResilienceScheme::Strong;
  ac.detection = SdcDetection::Checksum;
  ac.semi_blocking = true;
  ac.adaptive = true;
  ac.adaptive_config.checkpoint_cost = 2e-4;
  ac.adaptive_config.min_interval = 0.002;
  ac.adaptive_config.max_interval = 0.02;
  ac.checkpoint_interval = 0.004;
  ac.heartbeat_period = 0.0005;
  ac.heartbeat_timeout = 0.002;
  rt::ClusterConfig cc;
  cc.nodes_per_replica = j.nodes_needed();
  cc.spare_nodes = 12;
  cc.seed = 777;
  AcrRuntime runtime(ac, cc);
  runtime.set_task_factory(j.factory());
  runtime.setup();
  PredictorConfig pred;
  pred.recall = 0.7;
  pred.precision = 0.8;
  pred.lead_time = 0.001;
  runtime.set_predictor(pred);
  FaultPlan plan;
  plan.arrivals = std::make_shared<failure::RenewalProcess>(
      std::make_shared<failure::Exponential>(0.01));
  plan.sdc_fraction = 0.4;
  runtime.set_fault_plan(plan);
  RunSummary s = runtime.run(60.0);
  EXPECT_TRUE(s.complete || s.failed) << "wedged at " << s.finish_time;
}

TEST(Jacobi, StencilSmoothsTowardTheZeroBoundary) {
  // With zero Dirichlet-style ghosts, repeated averaging must contract the
  // solution norm; more iterations, smaller norm.
  auto run_norm = [](std::uint64_t iterations) {
    apps::Jacobi3DConfig j = app_cfg(iterations);
    AcrConfig ac;
    ac.checkpoint_interval = 1e6;  // pure solve
    rt::ClusterConfig cc;
    cc.nodes_per_replica = j.nodes_needed();
    cc.spare_nodes = 0;
    AcrRuntime runtime(ac, cc);
    runtime.set_task_factory(j.factory());
    runtime.setup();
    RunSummary s = runtime.run(100.0);
    EXPECT_TRUE(s.complete);
    double norm = 0.0;
    for (int i = 0; i < runtime.cluster().nodes_per_replica(); ++i) {
      rt::Node& node = runtime.cluster().node_at(0, i);
      for (int t = 0; t < node.num_tasks(); ++t)
        norm += static_cast<apps::Jacobi3DTask&>(node.task(t)).solution_norm();
    }
    return norm;
  };
  double n5 = run_norm(5);
  double n20 = run_norm(20);
  double n60 = run_norm(60);
  EXPECT_GT(n5, n20);
  EXPECT_GT(n20, n60);
  EXPECT_GT(n60, 0.0);
}

}  // namespace
}  // namespace acr
