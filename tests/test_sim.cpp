// Large-scale phase model and Monte-Carlo lifetime simulator tests,
// including cross-validation against the §5 closed-form model.
#include <gtest/gtest.h>

#include "model/acr_model.h"
#include "sim/lifetime.h"
#include "sim/phase_model.h"

namespace acr::sim {
namespace {

const apps::MiniAppSpec& jacobi_spec() { return apps::kTable2[0]; }
const apps::MiniAppSpec& leanmd_spec() { return apps::kTable2[4]; }
const apps::MiniAppSpec& lulesh_spec() { return apps::kTable2[3]; }

TEST(PhaseModel, CheckpointDecompositionIsPositive) {
  PhaseModel pm(1024, jacobi_spec());
  for (DetectionMode m :
       {DetectionMode::FullDefault, DetectionMode::FullMixed,
        DetectionMode::FullColumn, DetectionMode::Checksum}) {
    CheckpointPhases p = pm.checkpoint_phases(m);
    EXPECT_GT(p.local_checkpoint, 0.0);
    EXPECT_GT(p.transfer, 0.0);
    EXPECT_GT(p.comparison, 0.0);
    EXPECT_GT(p.total(), 0.0);
  }
}

/// Fig. 8: default-mapping overhead grows ~4x from 256 to 1024 nodes per
/// replica (Z growth) and is flat beyond; column/mixed/checksum are flat.
TEST(PhaseModel, Figure8ScalingShape) {
  auto total = [](int nodes, DetectionMode m) {
    return PhaseModel(nodes, jacobi_spec()).checkpoint_phases(m).total();
  };
  double d256 = total(256, DetectionMode::FullDefault);
  double d1k = total(1024, DetectionMode::FullDefault);
  double d16k = total(16384, DetectionMode::FullDefault);
  EXPECT_GT(d1k, d256 * 2.0);          // rises while Z grows
  EXPECT_NEAR(d16k, d1k, d1k * 0.05);  // flat once Z saturates

  double c256 = total(256, DetectionMode::FullColumn);
  double c16k = total(16384, DetectionMode::FullColumn);
  EXPECT_NEAR(c16k, c256, c256 * 0.05);

  double k256 = total(256, DetectionMode::Checksum);
  double k16k = total(16384, DetectionMode::Checksum);
  EXPECT_NEAR(k16k, k256, k256 * 0.05);
}

/// Fig. 8 magnitudes: Jacobi3D default-mapping checkpoint ~0.6 s at 256
/// nodes/replica (1K cores) rising to ~2 s at scale; the paper's exact
/// numbers, matched in shape and rough magnitude.
TEST(PhaseModel, Figure8Magnitudes) {
  double small =
      PhaseModel(256, jacobi_spec()).checkpoint_phases(DetectionMode::FullDefault).total();
  double large =
      PhaseModel(16384, jacobi_spec()).checkpoint_phases(DetectionMode::FullDefault).total();
  EXPECT_GT(small, 0.3);
  EXPECT_LT(small, 0.8);
  EXPECT_GT(large, 0.7);
  EXPECT_LT(large, 2.5);
}

TEST(PhaseModel, ChecksumBeatsColumnForSmallCheckpoints) {
  // Paper §6.2: for the MD apps (small, scattered checkpoints) the checksum
  // method outperforms every mapping; for high-memory-pressure apps the
  // checksum's 4-instruction/byte compute makes it *worse* than column.
  PhaseModel md(4096, leanmd_spec());
  EXPECT_LT(md.checkpoint_phases(DetectionMode::Checksum).total(),
            md.checkpoint_phases(DetectionMode::FullDefault).total());
  PhaseModel big(4096, jacobi_spec());
  double checksum = big.checkpoint_phases(DetectionMode::Checksum).total();
  double column = big.checkpoint_phases(DetectionMode::FullColumn).total();
  EXPECT_GT(checksum, column);
}

TEST(PhaseModel, LuleshPaysMoreForSerialization) {
  PhaseModel lulesh(1024, lulesh_spec());
  PhaseModel jacobi(1024, jacobi_spec());
  double lu = lulesh.checkpoint_phases(DetectionMode::FullColumn).local_checkpoint /
              apps::checkpoint_bytes_per_node(lulesh_spec());
  double ja = jacobi.checkpoint_phases(DetectionMode::FullColumn).local_checkpoint /
              apps::checkpoint_bytes_per_node(jacobi_spec());
  EXPECT_GT(lu, ja);  // per-byte serialization cost is higher
}

/// Fig. 10: strong restart ships one checkpoint (no contention) and beats
/// medium-with-default-mapping; topology mapping rescues medium.
TEST(PhaseModel, Figure10RestartOrdering) {
  PhaseModel pm(16384, jacobi_spec());
  RestartPhases strong = pm.restart_strong();
  RestartPhases med_default = pm.restart_medium(topo::MappingScheme::Default);
  RestartPhases med_column = pm.restart_medium(topo::MappingScheme::Column);
  EXPECT_LT(strong.transfer, med_default.transfer);
  EXPECT_LT(med_column.transfer, med_default.transfer);
  // Paper: mapping brought Jacobi3D medium recovery from ~2 s to ~0.4 s.
  EXPECT_GT(med_default.total() / med_column.total(), 1.5);
}

TEST(PhaseModel, RestartBarrierDominatesForSmallCheckpoints) {
  // Fig. 10c: LeanMD restart is tens of ms, mostly synchronization, and
  // grows slowly with node count.
  PhaseModel small_scale(256, leanmd_spec());
  PhaseModel large_scale(16384, leanmd_spec());
  double r_small = small_scale.restart_strong().reconstruction;
  double r_large = large_scale.restart_strong().reconstruction;
  EXPECT_GT(r_large, r_small);
  EXPECT_LT(r_large, r_small * 3.0);  // "small increase" with core count
  EXPECT_GT(r_small, 1e-3);
}

TEST(PhaseModel, SdcRestartHasNoTransfer) {
  PhaseModel pm(1024, jacobi_spec());
  RestartPhases r = pm.restart_sdc();
  EXPECT_DOUBLE_EQ(r.transfer, 0.0);
  EXPECT_GT(r.reconstruction, 0.0);
}

// ---------------------------------------------------------------------------
// Lifetime simulator.
// ---------------------------------------------------------------------------

LifetimeConfig base_lifetime(model::Scheme scheme) {
  LifetimeConfig cfg;
  cfg.work = 24.0 * 3600.0;
  cfg.tau = 600.0;
  cfg.checkpoint_cost = 5.0;
  cfg.restart_hard = 10.0;
  cfg.restart_sdc = 5.0;
  cfg.scheme = scheme;
  cfg.hard_mtbf = 3.0e4;
  cfg.sdc_mtbf = 2.0e5;
  cfg.trials = 300;
  cfg.seed = 42;
  return cfg;
}

TEST(Lifetime, NoFailuresMeansPureCheckpointOverhead) {
  LifetimeConfig cfg = base_lifetime(model::Scheme::Strong);
  cfg.hard_mtbf = 1e15;
  cfg.sdc_mtbf = 1e15;
  cfg.trials = 3;
  LifetimeResult r = simulate_lifetime(cfg);
  double expected_ckpts = cfg.work / cfg.tau;
  EXPECT_NEAR(r.mean_checkpoint_time, expected_ckpts * cfg.checkpoint_cost,
              cfg.checkpoint_cost * 2);
  EXPECT_DOUBLE_EQ(r.mean_rework_time, 0.0);
  EXPECT_DOUBLE_EQ(r.prob_undetected_sdc, 0.0);
}

TEST(Lifetime, SchemeOrderingMatchesModel) {
  LifetimeResult strong = simulate_lifetime(base_lifetime(model::Scheme::Strong));
  LifetimeResult medium = simulate_lifetime(base_lifetime(model::Scheme::Medium));
  LifetimeResult weak = simulate_lifetime(base_lifetime(model::Scheme::Weak));
  // Strong pays the most (full rework per failure); weak the least.
  EXPECT_GT(strong.mean_total_time, medium.mean_total_time);
  EXPECT_GE(medium.mean_total_time * 1.001, weak.mean_total_time);
  // SDC exposure: strong none, weak the most.
  EXPECT_DOUBLE_EQ(strong.prob_undetected_sdc, 0.0);
  EXPECT_GE(weak.prob_undetected_sdc, medium.prob_undetected_sdc);
  EXPECT_GT(weak.prob_undetected_sdc, 0.0);
}

TEST(Lifetime, DetectedSdcForcesRework) {
  LifetimeConfig cfg = base_lifetime(model::Scheme::Strong);
  cfg.hard_mtbf = 1e15;
  cfg.sdc_mtbf = 5e3;  // frequent corruption
  LifetimeResult r = simulate_lifetime(cfg);
  EXPECT_GT(r.mean_sdc_detected, 5.0);
  EXPECT_GT(r.mean_rework_time, 0.0);
  EXPECT_DOUBLE_EQ(r.prob_undetected_sdc, 0.0);  // strong detects everything
}

/// Cross-validation: the Monte-Carlo total time should agree with the §5
/// closed-form T at the same tau within a few percent.
TEST(Lifetime, AgreesWithClosedFormModel) {
  model::SystemParams sp;
  sp.work = 24.0 * 3600.0;
  sp.checkpoint_cost = 15.0;
  sp.restart_hard = 30.0;
  sp.restart_sdc = 30.0;
  sp.socket_mtbf_hard = 50.0 * model::kSecondsPerYear;
  sp.sdc_fit_per_socket = 100.0;
  sp.sockets_per_replica = 65536;
  model::AcrModel m(sp);

  for (model::Scheme scheme :
       {model::Scheme::Strong, model::Scheme::Medium}) {
    double tau = m.optimal_tau(scheme);
    LifetimeConfig cfg;
    cfg.work = sp.work;
    cfg.tau = tau;
    cfg.checkpoint_cost = sp.checkpoint_cost;
    cfg.restart_hard = sp.restart_hard;
    cfg.restart_sdc = sp.restart_sdc;
    cfg.scheme = scheme;
    cfg.hard_mtbf = sp.system_hard_mtbf();
    cfg.sdc_mtbf = sp.system_sdc_mtbf();
    cfg.trials = 400;
    cfg.seed = 7;
    LifetimeResult r = simulate_lifetime(cfg);
    double closed_form = m.total_time(scheme, tau);
    EXPECT_NEAR(r.mean_total_time / closed_form, 1.0, 0.05)
        << model::scheme_name(scheme);
  }
}

TEST(Lifetime, HigherFailureRateRaisesOverhead) {
  LifetimeConfig calm = base_lifetime(model::Scheme::Strong);
  calm.hard_mtbf = 1e6;
  LifetimeConfig stormy = base_lifetime(model::Scheme::Strong);
  stormy.hard_mtbf = 1e4;
  EXPECT_GT(simulate_lifetime(stormy).mean_overhead_fraction,
            simulate_lifetime(calm).mean_overhead_fraction);
}

TEST(Lifetime, UndetectedSdcRiskGrowsWithTau) {
  LifetimeConfig tight = base_lifetime(model::Scheme::Weak);
  tight.sdc_mtbf = 1e4;
  tight.tau = 100.0;
  LifetimeConfig loose = tight;
  loose.tau = 3000.0;
  EXPECT_GT(simulate_lifetime(loose).prob_undetected_sdc,
            simulate_lifetime(tight).prob_undetected_sdc);
}

}  // namespace
}  // namespace acr::sim
