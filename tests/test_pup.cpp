// Unit and property tests for the PUP serialization framework.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "checksum/kernels.h"
#include "common/rng.h"
#include "pup/checker.h"
#include "pup/pup.h"

namespace acr::pup {
namespace {

struct Inner {
  std::int32_t a = 0;
  std::vector<double> values;
  void pup(Puper& p) {
    p | a;
    p | values;
  }
  bool operator==(const Inner&) const = default;
};

struct Outer {
  double x = 0.0;
  float y = 0.0f;
  bool flag = false;
  std::string name;
  std::vector<Inner> inners;
  std::map<std::string, std::uint64_t> index;
  std::array<std::int16_t, 4> small{};
  std::pair<std::uint8_t, double> pr{};
  void pup(Puper& p) {
    p | x;
    p | y;
    p | flag;
    p | name;
    p | inners;
    p | index;
    p | small;
    p | pr;
  }
  bool operator==(const Outer&) const = default;
};

Outer make_sample(std::uint64_t seed) {
  Pcg32 rng(seed, 3);
  Outer o;
  o.x = rng.uniform(-10, 10);
  o.y = static_cast<float>(rng.uniform());
  o.flag = rng.bounded(2) == 1;
  o.name = "sample-" + std::to_string(seed);
  for (int i = 0; i < 3; ++i) {
    Inner in;
    in.a = static_cast<std::int32_t>(rng.next());
    for (int j = 0; j < 5; ++j) in.values.push_back(rng.uniform());
    o.inners.push_back(in);
  }
  o.index["alpha"] = rng.next64();
  o.index["beta"] = rng.next64();
  for (auto& s : o.small) s = static_cast<std::int16_t>(rng.next());
  o.pr = {static_cast<std::uint8_t>(rng.bounded(255)), rng.uniform()};
  return o;
}

TEST(Pup, SizerMatchesPackerExactly) {
  Outer o = make_sample(1);
  EXPECT_EQ(checkpoint_size(o), make_checkpoint(o).size());
}

TEST(Pup, RoundTripIsIdentity) {
  Outer o = make_sample(2);
  Checkpoint c = make_checkpoint(o);
  Outer restored;
  restore_checkpoint(restored, c);
  EXPECT_EQ(o, restored);
}

TEST(Pup, RoundTripPreservesEmptyContainers) {
  Outer o;  // all defaults: empty vectors, map, string
  Checkpoint c = make_checkpoint(o);
  Outer restored = make_sample(9);  // pre-populate to prove clearing works
  restore_checkpoint(restored, c);
  EXPECT_EQ(o, restored);
}

TEST(Pup, UnpackerDetectsTagMismatch) {
  double d = 4.0;
  Packer p;
  p | d;
  Checkpoint c = p.take();
  std::int64_t wrong = 0;
  Unpacker u(c);
  EXPECT_THROW(u | wrong, StreamError);
}

TEST(Pup, UnpackerDetectsCountMismatch) {
  std::vector<double> v{1, 2, 3};
  Checkpoint c = make_checkpoint(v);
  // Corrupt the element-count header of the array record: the stream has
  // [u64 record: count=1][payload 8B (the value 3)] then
  // [f64 record: count=3][payload 24B].
  auto bytes = std::vector<std::byte>(c.bytes().begin(), c.bytes().end());
  // First record header: tag(1) + count(8) + payload(8) = 17 bytes.
  std::uint64_t bogus = 999;
  std::memcpy(bytes.data() + 17 + 1, &bogus, sizeof bogus);
  Checkpoint corrupt{std::move(bytes)};
  std::vector<double> out;
  Unpacker u(corrupt);
  EXPECT_THROW(u | out, StreamError);
}

TEST(Pup, UnpackerDetectsTruncation) {
  Outer o = make_sample(3);
  Checkpoint c = make_checkpoint(o);
  auto bytes = std::vector<std::byte>(c.bytes().begin(), c.bytes().end());
  bytes.resize(bytes.size() / 2);
  Checkpoint truncated{std::move(bytes)};
  Outer out;
  EXPECT_THROW(restore_checkpoint(out, truncated), StreamError);
}

TEST(Pup, EnumsRoundTrip) {
  enum class Color : std::uint16_t { Red = 7, Blue = 9 };
  Color color = Color::Blue;
  Packer p;
  pup_value(p, color);
  Color out = Color::Red;
  Checkpoint c = p.take();
  Unpacker u(c);
  pup_value(u, out);
  EXPECT_EQ(out, Color::Blue);
}

// ---------------------------------------------------------------------------
// Checker.
// ---------------------------------------------------------------------------

TEST(Checker, IdenticalStreamsMatch) {
  Outer o = make_sample(4);
  Checkpoint a = make_checkpoint(o);
  Checkpoint b = make_checkpoint(o);
  CompareResult r = compare_checkpoints(a, b);
  EXPECT_TRUE(r.match);
  EXPECT_EQ(r.mismatched_elements, 0u);
  EXPECT_GT(r.bytes_compared, 0u);
}

TEST(Checker, DifferentLengthsAreStructuralDivergence) {
  std::vector<double> a{1, 2, 3}, b{1, 2, 3, 4};
  Checkpoint ca = make_checkpoint(a), cb = make_checkpoint(b);
  CompareResult r = compare_checkpoints(ca, cb);
  EXPECT_FALSE(r.match);
  // The divergence is caught at the length record before any element data.
  EXPECT_EQ(r.first.record_index, 0u);
}

TEST(Checker, TagDivergenceDetected) {
  double d = 1.0;
  float f = 1.0f;
  Packer pa, pb;
  pa | d;
  pb | f;
  // Same header sizes? different payload sizes; still structural.
  CompareResult r = compare_streams(pa.take().bytes(), pb.take().bytes());
  EXPECT_FALSE(r.match);
}

TEST(Checker, RelativeToleranceAcceptsRoundoff) {
  std::vector<double> a{1.0, 2.0, 3.0};
  std::vector<double> b{1.0 + 1e-13, 2.0, 3.0 - 1e-13};
  CheckerConfig strict;
  EXPECT_FALSE(
      compare_checkpoints(make_checkpoint(a), make_checkpoint(b), strict)
          .match);
  CheckerConfig tolerant;
  tolerant.defaults.rel_tol = 1e-10;
  EXPECT_TRUE(
      compare_checkpoints(make_checkpoint(a), make_checkpoint(b), tolerant)
          .match);
}

TEST(Checker, AbsoluteTolerance) {
  std::vector<float> a{0.0f, 5.0f};
  std::vector<float> b{1e-8f, 5.0f};
  CheckerConfig cfg;
  cfg.defaults.abs_tol = 1e-6;
  EXPECT_TRUE(
      compare_checkpoints(make_checkpoint(a), make_checkpoint(b), cfg).match);
}

TEST(Checker, NanEqualsNan) {
  std::vector<double> a{std::nan("1")}, b{std::nan("2")};
  // Identical bit patterns would match anyway; use different payloads.
  CheckerConfig cfg;
  cfg.defaults.rel_tol = 1e-30;  // activates the fp comparison path
  EXPECT_TRUE(
      compare_checkpoints(make_checkpoint(a), make_checkpoint(b), cfg).match);
}

struct WithIgnored {
  double important = 0.0;
  double replica_local = 0.0;  // e.g. a timer
  void pup(Puper& p) {
    p | important;
    CompareOptions opts;
    opts.ignore = true;
    p.push_options(opts);
    p | replica_local;
    p.pop_options();
  }
};

TEST(Checker, IgnoredSectionsAreSkipped) {
  WithIgnored a{1.5, 100.0};
  WithIgnored b{1.5, -999.0};
  EXPECT_TRUE(compare_checkpoints(make_checkpoint(a), make_checkpoint(b)).match);
  WithIgnored c{2.5, 100.0};
  EXPECT_FALSE(
      compare_checkpoints(make_checkpoint(a), make_checkpoint(c)).match);
}

TEST(Checker, IgnoredSectionRoundTripsThroughUnpacker) {
  WithIgnored a{1.5, 42.0};
  Checkpoint c = make_checkpoint(a);
  WithIgnored out{};
  restore_checkpoint(out, c);
  EXPECT_EQ(out.important, 1.5);
  EXPECT_EQ(out.replica_local, 42.0);
}

TEST(Checker, CountsAllMismatchesWhenAsked) {
  std::vector<double> a{1, 2, 3, 4, 5};
  std::vector<double> b{1, 9, 3, 9, 9};
  CheckerConfig cfg;
  cfg.stop_at_first = false;
  CompareResult r =
      compare_checkpoints(make_checkpoint(a), make_checkpoint(b), cfg);
  EXPECT_FALSE(r.match);
  EXPECT_EQ(r.mismatched_elements, 3u);
}

/// Property: ANY single bit flip in compared payload bytes is detected.
class CheckerBitFlip : public ::testing::TestWithParam<int> {};

TEST_P(CheckerBitFlip, SingleBitFlipAlwaysDetected) {
  Outer o = make_sample(100 + GetParam());
  Checkpoint a = make_checkpoint(o);
  Pcg32 rng(static_cast<std::uint64_t>(GetParam()), 5);
  for (int trial = 0; trial < 50; ++trial) {
    Checkpoint b = make_checkpoint(o);
    // Flip a random payload bit (skip the flip when it lands in a record
    // header by re-drawing against the payload layout via the injector's
    // logic — here we simply flip any byte and accept that header flips
    // surface as StreamError-free structural mismatches).
    auto bytes = std::vector<std::byte>(b.bytes().begin(), b.bytes().end());
    std::size_t pos = static_cast<std::size_t>(rng.next64() % bytes.size());
    bytes[pos] ^= static_cast<std::byte>(1u << rng.bounded(8));
    Checkpoint flipped{std::move(bytes)};
    bool detected = false;
    try {
      detected = !compare_checkpoints(a, flipped).match;
    } catch (const StreamError&) {
      detected = true;  // header corruption: malformed stream, also caught
    }
    EXPECT_TRUE(detected) << "flip at byte " << pos << " went unnoticed";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheckerBitFlip, ::testing::Range(0, 8));

// ---------------------------------------------------------------------------
// Chunk-stable pack boundaries (the invariant the ckpt codec leans on, see
// the header comment of pup.h): repacking state whose mutation is local
// perturbs only the bytes — and hence the 256 KiB digest chunks — that
// cover the mutated fields.
// ---------------------------------------------------------------------------

struct BigState {
  std::vector<double> lattice;  // spans several digest chunks
  std::vector<std::uint64_t> meta;
  std::string tag;
  void pup(Puper& p) {
    p | lattice;
    p | meta;
    p | tag;
  }
};

BigState make_big(std::uint64_t seed) {
  Pcg32 rng(seed, 17);
  BigState s;
  s.lattice.resize(150'000);  // 1.2 MB: 5 chunks of the 256 KiB grid
  for (auto& v : s.lattice) v = rng.uniform();
  s.meta.resize(64);
  for (auto& m : s.meta) m = rng.next64();
  s.tag = "epoch-state-" + std::to_string(seed);
  return s;
}

TEST(PupChunkStability, RepackOfUnchangedStateIsBitIdentical) {
  BigState s = make_big(1);
  Checkpoint a = make_checkpoint(s);
  Checkpoint b = make_checkpoint(s);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_TRUE(a.buffer().content_equals(b.buffer()));
}

TEST(PupChunkStability, LocalizedMutationPerturbsOnlyCoveringChunks) {
  BigState s = make_big(2);
  Checkpoint before = make_checkpoint(s);
  // Mutate 8 adjacent lattice values in the middle of the array — 64 bytes
  // of payload, which can straddle at most two digest chunks.
  for (std::size_t i = 70'000; i < 70'008; ++i) s.lattice[i] += 1.0;
  Checkpoint after = make_checkpoint(s);
  ASSERT_EQ(before.size(), after.size());

  std::vector<std::uint32_t> da =
      checksum::crc32c_chunk_digests(before.bytes());
  std::vector<std::uint32_t> db = checksum::crc32c_chunk_digests(after.bytes());
  ASSERT_EQ(da.size(), db.size());
  ASSERT_GE(da.size(), 4u) << "state must span several chunks for this test";
  std::size_t dirty = 0;
  for (std::size_t i = 0; i < da.size(); ++i) dirty += da[i] != db[i];
  EXPECT_GE(dirty, 1u);
  EXPECT_LE(dirty, 2u) << "a 64-byte mutation straddles at most two chunks";

  // The bytes outside the dirty chunks are identical at identical offsets.
  for (std::size_t i = 0; i < da.size(); ++i) {
    if (da[i] != db[i]) continue;
    auto [lo, hi] = checksum::digest_chunk_range(before.size(), i);
    EXPECT_EQ(std::memcmp(before.bytes().data() + lo, after.bytes().data() + lo,
                          hi - lo),
              0)
        << "clean chunk " << i << " differs";
  }
}

TEST(PupChunkStability, TailFieldsStayStableWhenEarlyFieldsChange) {
  BigState s = make_big(3);
  Checkpoint before = make_checkpoint(s);
  s.lattice[0] = -123.5;  // first payload bytes of the stream
  Checkpoint after = make_checkpoint(s);
  ASSERT_EQ(before.size(), after.size());
  // Everything after the first chunk is untouched: same types, same sizes,
  // same values => same bytes at the same offsets.
  std::size_t chunk = checksum::kDigestChunk;
  ASSERT_GT(before.size(), 2 * chunk);
  EXPECT_EQ(std::memcmp(before.bytes().data() + chunk,
                        after.bytes().data() + chunk, before.size() - chunk),
            0);
}

TEST(PupChunkStability, ContainerGrowthShiftsLaterOffsets) {
  // The documented non-invariant: growing a container changes the stream
  // length, so later chunks legitimately all change. Round-trip still holds.
  BigState s = make_big(4);
  Checkpoint before = make_checkpoint(s);
  s.lattice.push_back(0.25);
  Checkpoint after = make_checkpoint(s);
  EXPECT_NE(before.size(), after.size());
  BigState restored;
  restore_checkpoint(restored, after);
  EXPECT_EQ(restored.lattice, s.lattice);
  EXPECT_EQ(restored.meta, s.meta);
  EXPECT_EQ(restored.tag, s.tag);
}

}  // namespace
}  // namespace acr::pup
