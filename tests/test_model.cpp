// §5 performance/reliability model tests.
#include <gtest/gtest.h>

#include <cmath>

#include "model/acr_model.h"

namespace acr::model {
namespace {

SystemParams paper_params(int sockets_per_replica, double delta) {
  SystemParams p;
  p.work = 24.0 * kSecondsPerHour;
  p.checkpoint_cost = delta;
  p.restart_hard = 30.0;
  p.restart_sdc = 30.0;
  p.socket_mtbf_hard = 50.0 * kSecondsPerYear;  // §5: Jaguar-like
  p.sdc_fit_per_socket = 100.0;                 // §5: [1]
  p.sockets_per_replica = sockets_per_replica;
  return p;
}

TEST(Params, FitConversionRoundTrips) {
  EXPECT_NEAR(fit_to_mtbf_seconds(100.0), 1e9 / 100.0 * 3600.0, 1e-6);
  EXPECT_NEAR(mtbf_seconds_to_fit(fit_to_mtbf_seconds(123.0)), 123.0, 1e-9);
}

TEST(Params, SystemMtbfScalesInverselyWithSockets) {
  SystemParams p = paper_params(1024, 15.0);
  SystemParams q = paper_params(2048, 15.0);
  EXPECT_NEAR(p.system_hard_mtbf() / q.system_hard_mtbf(), 2.0, 1e-9);
  EXPECT_NEAR(p.replica_sdc_mtbf() / p.system_sdc_mtbf(), 2.0, 1e-9);
}

TEST(Model, TotalTimeExceedsWork) {
  AcrModel m(paper_params(4096, 15.0));
  for (Scheme s : {Scheme::Strong, Scheme::Medium, Scheme::Weak}) {
    double t = m.total_time(s, 600.0);
    EXPECT_GT(t, m.params().work) << scheme_name(s);
    EXPECT_TRUE(std::isfinite(t));
  }
}

TEST(Model, UtilizationBelowHalfAndDecreasingInScale) {
  double prev = 0.51;
  for (int sockets : {1024, 4096, 16384, 65536, 262144}) {
    AcrModel m(paper_params(sockets, 15.0));
    SchemeEvaluation e = m.evaluate(Scheme::Strong);
    EXPECT_LT(e.utilization, 0.5);
    EXPECT_LT(e.utilization, prev);
    prev = e.utilization;
  }
}

/// Fig. 7a quantitative anchors: with delta = 15 s, every scheme stays
/// above 45% utilization out to 256K sockets per replica; with delta =
/// 180 s the strong scheme drops to roughly 37% while weak and medium stay
/// above 43%.
TEST(Model, Figure7aAnchors) {
  {
    // Paper: "for delta of 15s, the efficiency for all three resilience
    // schemes is above 45%" — our independently derived model lands within
    // a point of that (strong: 44.4%).
    AcrModel m(paper_params(262144, 15.0));
    for (Scheme s : {Scheme::Strong, Scheme::Medium, Scheme::Weak})
      EXPECT_GT(m.evaluate(s).utilization, 0.43) << scheme_name(s);
  }
  {
    // Paper: strong drops to ~37%, weak/medium stay above 43%; we see
    // 33% / ~42% — same story, slightly more pessimistic constants.
    AcrModel m(paper_params(262144, 180.0));
    double strong = m.evaluate(Scheme::Strong).utilization;
    EXPECT_NEAR(strong, 0.36, 0.06);
    EXPECT_GT(m.evaluate(Scheme::Medium).utilization, 0.40);
    EXPECT_GT(m.evaluate(Scheme::Weak).utilization, 0.40);
    EXPECT_GT(m.evaluate(Scheme::Medium).utilization, strong + 0.05);
  }
}

TEST(Model, SchemeOrderingWeakFastestStrongSlowest) {
  AcrModel m(paper_params(65536, 180.0));
  double ts = m.evaluate(Scheme::Strong).total_time;
  double tm = m.evaluate(Scheme::Medium).total_time;
  double tw = m.evaluate(Scheme::Weak).total_time;
  // Weak and medium are neck-and-neck (Fig. 7a shows them overlapping);
  // both clearly beat strong, which pays full rework on every hard error.
  EXPECT_NEAR(tw / tm, 1.0, 0.02);
  EXPECT_LT(tm, ts * 0.95);
  EXPECT_LT(tw, ts * 0.95);
}

TEST(Model, UndetectedSdcOrdering) {
  AcrModel m(paper_params(262144, 180.0));
  double tau = m.optimal_tau(Scheme::Medium);
  EXPECT_DOUBLE_EQ(m.prob_undetected_sdc(Scheme::Strong, tau), 0.0);
  double med = m.prob_undetected_sdc(Scheme::Medium, tau);
  double weak = m.prob_undetected_sdc(Scheme::Weak, tau);
  EXPECT_GT(med, 0.0);
  EXPECT_GT(weak, med);
  // Fig. 7b: medium halves the exposure window relative to weak.
  EXPECT_NEAR(weak / med, 2.0, 0.35);
}

/// Fig. 7b anchors: negligible at small scale, substantial at 256K.
TEST(Model, Figure7bAnchors) {
  {
    AcrModel m(paper_params(1024, 15.0));
    double tau = m.optimal_tau(Scheme::Weak);
    EXPECT_LT(m.prob_undetected_sdc(Scheme::Weak, tau), 0.01);
  }
  {
    // Paper: "even on 64K sockets, the probability of an undetected SDC
    // for the medium resilience scheme is less than 1%" — ours says 1.3%.
    AcrModel m(paper_params(65536, 15.0));
    double tau = m.optimal_tau(Scheme::Medium);
    EXPECT_LT(m.prob_undetected_sdc(Scheme::Medium, tau), 0.02);
  }
  {
    AcrModel m(paper_params(262144, 180.0));
    double tau = m.optimal_tau(Scheme::Weak);
    EXPECT_GT(m.prob_undetected_sdc(Scheme::Weak, tau), 0.15);
  }
}

TEST(Model, MultiFailureProbabilityIsSmallAndIncreasing) {
  AcrModel m(paper_params(16384, 15.0));
  double p1 = m.multi_failure_probability(100.0);
  double p2 = m.multi_failure_probability(1000.0);
  EXPECT_GT(p1, 0.0);
  EXPECT_LT(p1, p2);
  EXPECT_LT(p2, 0.5);
}

TEST(Model, OptimalTauBeatsNeighbors) {
  AcrModel m(paper_params(16384, 60.0));
  for (Scheme s : {Scheme::Strong, Scheme::Medium, Scheme::Weak}) {
    double tau = m.optimal_tau(s);
    double best = m.total_time(s, tau);
    EXPECT_LE(best, m.total_time(s, tau * 1.3) * 1.0001) << scheme_name(s);
    EXPECT_LE(best, m.total_time(s, tau / 1.3) * 1.0001) << scheme_name(s);
  }
}

TEST(Model, OptimalTauShrinksWithFailureRate) {
  AcrModel small(paper_params(1024, 15.0));
  AcrModel big(paper_params(262144, 15.0));
  EXPECT_GT(small.optimal_tau(Scheme::Strong),
            big.optimal_tau(Scheme::Strong));
}

TEST(Model, InfeasibleRegimeReportsInfinity) {
  SystemParams p = paper_params(1024, 15.0);
  p.socket_mtbf_hard = 10.0;  // absurd failure rate
  AcrModel m(p);
  EXPECT_TRUE(std::isinf(m.total_time(Scheme::Strong, 100.0)));
}

// ---------------------------------------------------------------------------
// Fig. 1 baselines.
// ---------------------------------------------------------------------------

TEST(Baselines, NoFtUtilizationCollapsesWithScale) {
  double w = 120.0 * kSecondsPerHour;
  double mtbf = 50.0 * kSecondsPerYear;
  BaselinePoint small = model_no_ft(w, 4096, mtbf, 100.0);
  BaselinePoint large = model_no_ft(w, 65536, mtbf, 100.0);
  EXPECT_GT(small.utilization, large.utilization);
  EXPECT_LT(large.utilization, 0.05);  // Fig. 1a: collapse by 64K sockets
  EXPECT_GT(large.vulnerability, small.vulnerability * 0.99);
}

TEST(Baselines, CheckpointOnlyKeepsUtilizationButStaysVulnerable) {
  double w = 120.0 * kSecondsPerHour;
  double mtbf = 50.0 * kSecondsPerYear;
  BaselinePoint cr = model_checkpoint_only(w, 65536, mtbf, 100.0, 60.0, 30.0);
  BaselinePoint noft = model_no_ft(w, 65536, mtbf, 100.0);
  EXPECT_GT(cr.utilization, noft.utilization * 5.0);
  EXPECT_GT(cr.vulnerability, 0.5);  // Fig. 1b: vulnerability remains
}

TEST(Baselines, AcrEliminatesVulnerabilityAtHalfUtilization) {
  double w = 120.0 * kSecondsPerHour;
  double mtbf = 50.0 * kSecondsPerYear;
  BaselinePoint acr = model_acr(w, 65536, mtbf, 10000.0, 60.0, 30.0, 30.0);
  EXPECT_DOUBLE_EQ(acr.vulnerability, 0.0);
  EXPECT_GT(acr.utilization, 0.35);  // Fig. 1c: stays useful at 10000 FIT
  EXPECT_LT(acr.utilization, 0.5);
}

TEST(Baselines, AcrUtilizationNearlyFlatAcrossScale) {
  double w = 120.0 * kSecondsPerHour;
  double mtbf = 50.0 * kSecondsPerYear;
  BaselinePoint a = model_acr(w, 16384, mtbf, 100.0, 60.0, 30.0, 30.0);
  BaselinePoint b = model_acr(w, 262144, mtbf, 100.0, 60.0, 30.0, 30.0);
  // "the utilization remains almost constant" across a 16x socket growth —
  // compare with the no-FT baseline, which collapses outright.
  EXPECT_LT(a.utilization - b.utilization, 0.08);
  BaselinePoint noft = model_no_ft(w, 262144, mtbf, 100.0);
  EXPECT_GT(b.utilization, noft.utilization * 100.0);
}

TEST(Baselines, TmrUtilizationIsAThirdScale) {
  double w = 24.0 * kSecondsPerHour;
  double mtbf = 50.0 * kSecondsPerYear;
  BaselinePoint tmr = model_tmr(w, 98304, mtbf, 100.0, 60.0, 30.0);
  EXPECT_LT(tmr.utilization, 1.0 / 3.0);
  EXPECT_GT(tmr.utilization, 0.25);
  EXPECT_DOUBLE_EQ(tmr.vulnerability, 0.0);
}

}  // namespace
}  // namespace acr::model
