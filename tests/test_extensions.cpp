// Tests for the extension modules: STL pup adapters, the durable
// checkpoint vault, CRC32-C, and the trace summarizer.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>

#include "acr/stats.h"
#include "checksum/crc32c.h"
#include "common/rng.h"
#include "pup/checker.h"
#include "pup/stl.h"
#include "pup/storage.h"

namespace acr {
namespace {

// ---------------------------------------------------------------------------
// STL adapters.
// ---------------------------------------------------------------------------

struct StlBag {
  std::deque<int> dq;
  std::set<std::string> names;
  std::optional<double> maybe;
  std::optional<double> empty;
  std::tuple<int, double, std::string> tup{0, 0.0, ""};
  std::unordered_map<std::string, std::vector<double>> table;
  std::unordered_set<std::int64_t> ids;

  void pup(pup::Puper& p) {
    p | dq;
    p | names;
    p | maybe;
    p | empty;
    p | tup;
    p | table;
    p | ids;
  }
  bool operator==(const StlBag&) const = default;
};

StlBag make_bag() {
  StlBag b;
  b.dq = {5, 4, 3};
  b.names = {"gamma", "alpha", "beta"};
  b.maybe = 2.75;
  b.tup = {7, 1.5, "seven"};
  b.table["x"] = {1.0, 2.0};
  b.table["a"] = {3.0};
  b.table["m"] = {};
  b.ids = {100, 7, 42};
  return b;
}

TEST(StlPup, RoundTripIsIdentity) {
  StlBag b = make_bag();
  pup::Checkpoint c = pup::make_checkpoint(b);
  StlBag restored;
  pup::restore_checkpoint(restored, c);
  EXPECT_EQ(b, restored);
}

TEST(StlPup, SizerAgreesWithPacker) {
  StlBag b = make_bag();
  EXPECT_EQ(pup::checkpoint_size(b), pup::make_checkpoint(b).size());
}

TEST(StlPup, UnorderedContainersSerializeCanonically) {
  // Two unordered_maps with identical content but different insertion
  // history (different bucket layouts) must produce identical streams —
  // the §2.1 replica-comparability requirement.
  std::unordered_map<std::string, int> a, b;
  a.reserve(1);
  for (int i = 0; i < 64; ++i) a["k" + std::to_string(i)] = i;
  b.reserve(4096);
  for (int i = 63; i >= 0; --i) b["k" + std::to_string(i)] = i;
  pup::Packer pa, pb;
  pup::pup_value(pa, a);
  pup::pup_value(pb, b);
  pup::Checkpoint ca = pa.take(), cb = pb.take();
  EXPECT_TRUE(pup::compare_checkpoints(ca, cb).match);
}

TEST(StlPup, OptionalDistinguishesEmptyFromDefault) {
  std::optional<double> engaged_zero = 0.0;
  std::optional<double> empty;
  pup::Packer pa, pb;
  pup::pup_value(pa, engaged_zero);
  pup::pup_value(pb, empty);
  pup::Checkpoint ca = pa.take(), cb = pb.take();
  EXPECT_FALSE(pup::compare_checkpoints(ca, cb).match);
}

// ---------------------------------------------------------------------------
// Checkpoint vault.
// ---------------------------------------------------------------------------

class VaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("acr_vault_test_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  pup::StoredImage make_image(std::uint64_t epoch) {
    std::vector<double> data{1.0 * epoch, 2.0, 3.0};
    pup::StoredImage img;
    img.epoch = epoch;
    img.iteration = epoch * 10;
    img.image = pup::make_checkpoint(data);
    return img;
  }

  std::filesystem::path dir_;
};

TEST_F(VaultTest, StoreLoadRoundTrip) {
  pup::CheckpointVault vault(dir_, "node3");
  pup::StoredImage img = make_image(7);
  vault.store(img);
  auto loaded = vault.load(7);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->epoch, 7u);
  EXPECT_EQ(loaded->iteration, 70u);
  ASSERT_EQ(loaded->image.size(), img.image.size());
  EXPECT_EQ(0, std::memcmp(loaded->image.bytes().data(),
                           img.image.bytes().data(), img.image.size()));
}

TEST_F(VaultTest, MissingEpochIsNullopt) {
  pup::CheckpointVault vault(dir_, "node3");
  EXPECT_FALSE(vault.load(99).has_value());
  EXPECT_FALSE(vault.load_latest().has_value());
}

TEST_F(VaultTest, LoadLatestPicksNewest) {
  pup::CheckpointVault vault(dir_, "node3");
  for (std::uint64_t e : {3u, 1u, 8u, 5u}) vault.store(make_image(e));
  auto latest = vault.load_latest();
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->epoch, 8u);
  EXPECT_EQ(vault.epochs_on_disk(),
            (std::vector<std::uint64_t>{1, 3, 5, 8}));
}

TEST_F(VaultTest, CorruptFileIsDetectedAndSkipped) {
  pup::CheckpointVault vault(dir_, "node3");
  vault.store(make_image(4));
  auto path = vault.store(make_image(9));
  // Flip a payload byte of the newest file on disk.
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(40);
    char c;
    f.seekg(40);
    f.get(c);
    f.seekp(40);
    f.put(static_cast<char>(c ^ 0x10));
  }
  EXPECT_THROW(vault.load(9), pup::StreamError);
  // load_latest falls back to the intact epoch 4.
  auto latest = vault.load_latest();
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->epoch, 4u);
}

TEST_F(VaultTest, PruneDropsOldEpochs) {
  pup::CheckpointVault vault(dir_, "node3");
  for (std::uint64_t e : {1u, 2u, 3u, 4u}) vault.store(make_image(e));
  vault.prune(3);
  EXPECT_EQ(vault.epochs_on_disk(), (std::vector<std::uint64_t>{3, 4}));
}

// ---------------------------------------------------------------------------
// CRC32-C.
// ---------------------------------------------------------------------------

std::vector<std::byte> bytes_of(std::string_view s) {
  std::vector<std::byte> v(s.size());
  std::memcpy(v.data(), s.data(), s.size());
  return v;
}

TEST(Crc32c, KnownVectors) {
  // RFC 3720 test vector: 32 bytes of zeros.
  std::vector<std::byte> zeros(32, std::byte{0});
  EXPECT_EQ(checksum::crc32c(zeros), 0x8A9136AAu);
  // "123456789" — the classic check value.
  EXPECT_EQ(checksum::crc32c(bytes_of("123456789")), 0xE3069283u);
}

TEST(Crc32c, IncrementalMatchesOneShotAtAnySplit) {
  Pcg32 rng(31, 7);
  std::vector<std::byte> data(1023);
  for (auto& b : data) b = static_cast<std::byte>(rng.bounded(256));
  std::uint32_t oneshot = checksum::crc32c(data);
  for (std::size_t split : {0u, 1u, 511u, 1022u, 1023u}) {
    checksum::Crc32c inc;
    inc.append(std::span<const std::byte>(data).subspan(0, split));
    inc.append(std::span<const std::byte>(data).subspan(split));
    EXPECT_EQ(inc.digest(), oneshot) << "split " << split;
  }
}

TEST(Crc32c, DetectsSingleBitFlips) {
  std::vector<std::byte> data = bytes_of("the quick brown fox");
  std::uint32_t clean = checksum::crc32c(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (unsigned bit = 0; bit < 8; ++bit) {
      data[i] ^= static_cast<std::byte>(1u << bit);
      EXPECT_NE(checksum::crc32c(data), clean);
      data[i] ^= static_cast<std::byte>(1u << bit);
    }
  }
}

// ---------------------------------------------------------------------------
// Trace summary.
// ---------------------------------------------------------------------------

TEST(TraceSummary, ExtractsCheckpointAndRecoveryTimings) {
  rt::TraceLog log;
  log.record(0.0, rt::TraceKind::JobStart);
  log.record(1.0, rt::TraceKind::CheckpointRequested);
  log.record(1.2, rt::TraceKind::CheckpointIterationDecided);
  log.record(1.3, rt::TraceKind::CheckpointPacked);
  log.record(1.5, rt::TraceKind::CheckpointCommitted);
  log.record(2.0, rt::TraceKind::HardFailureInjected, 0, 3);
  log.record(2.2, rt::TraceKind::HardFailureDetected, 0, 3);
  log.record(2.2, rt::TraceKind::RecoveryStarted, 0, 3);
  log.record(2.7, rt::TraceKind::RecoveryCompleted, 0);
  log.record(3.0, rt::TraceKind::CheckpointRequested);   // aborted
  log.record(3.4, rt::TraceKind::CheckpointRequested);   // committed
  log.record(3.6, rt::TraceKind::CheckpointPacked);
  log.record(3.8, rt::TraceKind::CheckpointCommitted);
  log.record(4.0, rt::TraceKind::JobComplete);

  TraceSummary s = summarize_trace(log);
  ASSERT_EQ(s.checkpoints.size(), 3u);
  EXPECT_TRUE(s.checkpoints[0].committed_ok);
  EXPECT_FALSE(s.checkpoints[1].committed_ok);  // the aborted one
  EXPECT_TRUE(s.checkpoints[2].committed_ok);
  EXPECT_NEAR(s.checkpoints[0].total_latency(), 0.5, 1e-12);
  ASSERT_EQ(s.recoveries.size(), 1u);
  EXPECT_NEAR(s.recoveries[0].duration(), 0.5, 1e-12);
  EXPECT_EQ(s.failures_injected, 1u);
  EXPECT_EQ(s.failures_detected, 1u);
  EXPECT_NEAR(s.mean_detection_latency, 0.2, 1e-12);
  EXPECT_NEAR(s.job_complete, 4.0, 1e-12);
  EXPECT_NEAR(s.checkpoint_time_fraction(), (0.5 + 0.4) / 4.0, 1e-12);
  EXPECT_EQ(s.commit_latency_stats().count(), 2u);
}

TEST(TraceSummary, EmptyTraceIsAllZero) {
  rt::TraceLog log;
  TraceSummary s = summarize_trace(log);
  EXPECT_TRUE(s.checkpoints.empty());
  EXPECT_TRUE(s.recoveries.empty());
  EXPECT_DOUBLE_EQ(s.checkpoint_time_fraction(), 0.0);
}

}  // namespace
}  // namespace acr
