// Durable-tier (L2) tests: the recovery ladder (L1 rebuild preferred over
// L2 fetch preferred over scratch restart), flush atomicity (a node that
// dies mid-flush publishes nothing; a partially-flushed epoch is never
// fetchable), the --halt-after drain flow, and the analytic tier model
// against the simulator's own counters.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "acr/runtime.h"
#include "apps/jacobi3d.h"
#include "checksum/fletcher.h"
#include "ckpt/tier.h"
#include "model/acr_model.h"
#include "parallel/pool.h"

namespace acr {
namespace {

apps::Jacobi3DConfig tier_app() {
  apps::Jacobi3DConfig cfg;
  cfg.tasks_x = cfg.tasks_y = 2;
  cfg.tasks_z = 4;
  cfg.block_x = cfg.block_y = cfg.block_z = 4;
  cfg.iterations = 40;
  cfg.slots_per_node = 2;  // 8 nodes per replica
  cfg.seconds_per_point = 1e-5;
  return cfg;
}

AcrConfig tier_acr_config(double bandwidth = 1e9) {
  AcrConfig ac;
  ac.scheme = ResilienceScheme::Strong;
  ac.redundancy = ckpt::Scheme::Partner;
  ac.checkpoint_interval = 0.003;
  ac.heartbeat_period = 0.0004;
  ac.heartbeat_timeout = 0.0016;
  ac.tier.bandwidth = bandwidth;
  return ac;
}

std::uint64_t verified_digest(AcrRuntime& runtime) {
  checksum::Fletcher64 f;
  for (int i = 0; i < runtime.cluster().nodes_per_replica(); ++i) {
    NodeAgent& a = runtime.agent_at(0, i);
    NodeAgent& b = runtime.agent_at(1, i);
    const NodeAgent& best = a.verified_epoch() >= b.verified_epoch() ? a : b;
    f.append(best.verified_image());
  }
  return f.digest();
}

struct Reference {
  std::uint64_t digest = 0;
  double finish_time = 0.0;
};

/// Fault-free single-tier run fixing the expected answer and duration.
const Reference& reference() {
  static Reference cached = [] {
    apps::Jacobi3DConfig j = tier_app();
    rt::ClusterConfig cc;
    cc.nodes_per_replica = j.nodes_needed();
    cc.spare_nodes = 0;
    AcrRuntime runtime(tier_acr_config(/*bandwidth=*/0.0), cc);
    runtime.set_task_factory(j.factory());
    runtime.setup();
    RunSummary s = runtime.run(1e3);
    ACR_REQUIRE(s.complete, "tier reference run must complete");
    Reference ref;
    ref.digest = verified_digest(runtime);
    ref.finish_time = s.finish_time;
    return ref;
  }();
  return cached;
}

struct Sim {
  apps::Jacobi3DConfig app;
  AcrRuntime runtime;
  Sim(const AcrConfig& ac, int spares, std::uint64_t seed)
      : app(tier_app()), runtime(ac, [&] {
          rt::ClusterConfig cc;
          cc.nodes_per_replica = tier_app().nodes_needed();
          cc.spare_nodes = spares;
          cc.seed = seed;
          return cc;
        }()) {
    runtime.set_task_factory(app.factory());
    runtime.setup();
  }
};

bool trace_contains(AcrRuntime& runtime, rt::TraceKind kind,
                    const std::string& detail_substr = "") {
  for (const auto& e : runtime.trace().events()) {
    if (e.kind != kind) continue;
    if (detail_substr.empty() ||
        e.detail.find(detail_substr) != std::string::npos)
      return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Flush basics and the no-tier control.
// ---------------------------------------------------------------------------

TEST(TierFlush, FaultFreeRunFlushesEveryEpochAndMatchesReference) {
  // Same seed with and without the tier: the async flush must ride
  // underneath the protocol without perturbing the app timeline at all.
  Sim control(tier_acr_config(/*bandwidth=*/0.0), 0, 7);
  RunSummary c = control.runtime.run(30.0);
  ASSERT_TRUE(c.complete);
  EXPECT_EQ(control.runtime.tier(), nullptr);
  EXPECT_EQ(c.l2_flushes, 0u);
  EXPECT_EQ(c.l2_newest_durable, 0u);

  Sim sim(tier_acr_config(), 0, 7);
  RunSummary s = sim.runtime.run(30.0);
  ASSERT_TRUE(s.complete);
  EXPECT_EQ(s.finish_time, c.finish_time)
      << "an enabled but unused tier must not perturb the app timeline";
  EXPECT_EQ(s.checkpoints, c.checkpoints);
  // Every committed epoch drains — 2 replicas x 8 roles each — except the
  // final-verification epoch, which ends the job instead of flushing.
  EXPECT_EQ(s.l2_flushes, (s.checkpoints - 1) * 16u);
  EXPECT_GT(s.l2_flush_bytes, 0u);
  EXPECT_EQ(s.l2_fetches, 0u);
  EXPECT_EQ(s.l2_fetch_waves, 0u);
  EXPECT_EQ(s.l2_newest_durable, s.checkpoints - 1);
  sim.runtime.engine().run_until(s.finish_time + 0.05);
  EXPECT_EQ(verified_digest(sim.runtime), reference().digest);
}

TEST(TierFlush, FlushIntervalSkipsEpochs) {
  AcrConfig ac = tier_acr_config();
  ac.tier.flush_interval = 3;
  Sim sim(ac, 0, 7);
  RunSummary s = sim.runtime.run(30.0);
  ASSERT_TRUE(s.complete);
  EXPECT_LT(s.l2_flushes, s.checkpoints * 16u);
  EXPECT_GT(s.l2_flushes, 0u);
  // The newest durable epoch is a multiple of the flush interval.
  EXPECT_EQ(s.l2_newest_durable % 3u, 0u);
}

// ---------------------------------------------------------------------------
// Recovery ladder rung 1: an L1-recoverable failure never touches L2.
// ---------------------------------------------------------------------------

TEST(TierLadder, SingleFailureUsesL1NotL2) {
  Sim sim(tier_acr_config(), 4, 11);
  double mid = reference().finish_time * 0.5;
  sim.runtime.engine().schedule_at(
      mid, [&sim] { sim.runtime.cluster().kill_role(0, 3); });
  RunSummary s = sim.runtime.run(30.0);
  ASSERT_TRUE(s.complete);
  EXPECT_GE(s.recoveries, 1u);          // partner copy handled it
  EXPECT_EQ(s.l2_fetch_waves, 0u);      // L2 never consulted
  EXPECT_EQ(s.l2_fetches, 0u);
  EXPECT_EQ(s.scratch_restarts, 0u);
  sim.runtime.engine().run_until(s.finish_time + 0.05);
  EXPECT_EQ(verified_digest(sim.runtime), reference().digest);
}

// ---------------------------------------------------------------------------
// Rung 2: L1-impossible loss is served from L2, not from scratch.
// ---------------------------------------------------------------------------

TEST(TierLadder, BuddyPairLossFetchesFromDurableInsteadOfScratch) {
  Sim sim(tier_acr_config(), 4, 31);
  double mid = reference().finish_time * 0.5;
  sim.runtime.engine().schedule_at(mid, [&sim] {
    sim.runtime.cluster().kill_role(0, 4);
    sim.runtime.cluster().kill_role(1, 4);
  });
  RunSummary s = sim.runtime.run(30.0);
  ASSERT_TRUE(s.complete) << "buddy-pair loss wedged the job";
  EXPECT_EQ(s.scratch_restarts, 0u)
      << "a flushed epoch existed; the ladder must fetch, not restart";
  EXPECT_GE(s.l2_fetch_waves, 1u);
  EXPECT_EQ(s.l2_fetches, 16u * s.l2_fetch_waves);
  EXPECT_TRUE(trace_contains(sim.runtime, rt::TraceKind::FetchCompleted));
  sim.runtime.engine().run_until(s.finish_time + 0.05);
  EXPECT_EQ(verified_digest(sim.runtime), reference().digest);
  // The fetch rolled back less work than a scratch restart would have:
  // with the newest epoch durable the job must beat restart-from-zero,
  // which costs at least another full reference duration after mid-run.
  EXPECT_LT(s.finish_time, mid + reference().finish_time);
}

TEST(TierLadder, BuddyPairLossBeforeAnyFlushFallsBackToScratch) {
  // Slow the tier so no epoch completes its flush before the kill: the
  // fetch rung finds nothing durable and degrades to a genuine scratch.
  AcrConfig ac = tier_acr_config(/*bandwidth=*/10.0);  // ~7 min per image
  Sim sim(ac, 4, 31);
  double early = reference().finish_time * 0.2;
  sim.runtime.engine().schedule_at(early, [&sim] {
    sim.runtime.cluster().kill_role(0, 4);
    sim.runtime.cluster().kill_role(1, 4);
  });
  RunSummary s = sim.runtime.run(60.0);
  ASSERT_TRUE(s.complete);
  EXPECT_GE(s.scratch_restarts, 1u);
  EXPECT_EQ(s.l2_fetch_waves, 0u);
  sim.runtime.engine().run_until(s.finish_time + 0.05);
  EXPECT_EQ(verified_digest(sim.runtime), reference().digest);
}

// ---------------------------------------------------------------------------
// Flush atomicity: partial epochs are invisible.
// ---------------------------------------------------------------------------

TEST(TierAtomicity, PartialEpochIsNotFetchable) {
  // Unit-level contract behind the ladder: an epoch becomes fetchable only
  // once EVERY role of EVERY replica has published it.
  ckpt::DurableTier tier(2, 2);
  ckpt::StoredImage img;
  img.epoch = 1;
  img.iteration = 10;
  img.image = pup::Checkpoint(std::vector<std::byte>(64, std::byte{0x5A}));
  for (int r = 0; r < 2; ++r)
    for (int i = 0; i < 2; ++i) tier.publish(r, i, img);
  EXPECT_EQ(tier.newest_complete_epoch(), 1u);
  img.epoch = 2;
  tier.publish(0, 0, img);
  tier.publish(0, 1, img);
  tier.publish(1, 0, img);  // (1,1) missing: epoch 2 incomplete
  EXPECT_EQ(tier.newest_complete_epoch(), 1u)
      << "a partially-flushed epoch must fall back to the previous one";
  tier.publish(1, 1, img);
  EXPECT_EQ(tier.newest_complete_epoch(), 2u);
}

TEST(TierAtomicity, MidFlushDeathPublishesNothing) {
  // Bandwidth low enough that a flush spans many checkpoint periods; kill
  // one node while its flush is in flight and verify the tier holds no
  // blob for it — there is no half-written L2 image.
  AcrConfig ac = tier_acr_config(/*bandwidth=*/2e4);  // ~0.2 s per image
  Sim sim(ac, 4, 13);
  const int victim = 5;
  double first_commit = 0.004;  // just past the first checkpoint commit
  sim.runtime.engine().schedule_at(first_commit + 0.02, [&sim] {
    ASSERT_TRUE(sim.runtime.agent_at(0, victim).flush_active())
        << "test premise: the victim must be mid-flush when killed";
    sim.runtime.cluster().kill_role(0, victim);
  });
  sim.runtime.engine().schedule_at(first_commit + 0.021, [&sim] {
    ckpt::DurableTier* tier = sim.runtime.tier();
    ASSERT_NE(tier, nullptr);
    for (std::uint64_t e : tier->epochs_present())
      EXPECT_FALSE(tier->has(0, victim, e))
          << "dead role published epoch " << e << " mid-flush";
  });
  RunSummary s = sim.runtime.run(60.0);
  ASSERT_TRUE(s.complete);
  sim.runtime.engine().run_until(s.finish_time + 0.05);
  EXPECT_EQ(verified_digest(sim.runtime), reference().digest);
}

// ---------------------------------------------------------------------------
// Drain (--halt-after): scavenge the newest epoch, then stop.
// ---------------------------------------------------------------------------

TEST(TierDrain, HaltAfterDrainsNewestEpochAndStops) {
  AcrConfig ac = tier_acr_config();
  ac.halt_after = reference().finish_time * 0.4;
  Sim sim(ac, 0, 7);
  RunSummary s = sim.runtime.run(30.0);
  EXPECT_FALSE(s.complete);
  EXPECT_FALSE(s.failed);
  EXPECT_TRUE(s.drained);
  EXPECT_GT(s.l2_newest_durable, 0u);
  EXPECT_TRUE(trace_contains(sim.runtime, rt::TraceKind::DrainCompleted));
  // Everything verified made it to L2.
  ckpt::DurableTier* tier = sim.runtime.tier();
  ASSERT_NE(tier, nullptr);
  EXPECT_EQ(tier->newest_complete_epoch(), s.l2_newest_durable);
}

TEST(TierDrain, DrainWithLaggingFlushesScavenges) {
  // Flush every 4th epoch so the drain moment almost surely finds the
  // newest verified epoch not yet durable and must push urgent flushes.
  AcrConfig ac = tier_acr_config();
  ac.tier.flush_interval = 4;
  ac.halt_after = reference().finish_time * 0.45;
  Sim sim(ac, 0, 7);
  RunSummary s = sim.runtime.run(30.0);
  EXPECT_TRUE(s.drained);
  EXPECT_GT(s.l2_scavenges, 0u);
  EXPECT_TRUE(trace_contains(sim.runtime, rt::TraceKind::DrainRequested));
  EXPECT_TRUE(trace_contains(sim.runtime, rt::TraceKind::DrainCompleted));
}

// ---------------------------------------------------------------------------
// Determinism: the flush/fetch pipeline is bitwise stable across kernel
// thread counts (the L2 cost model is pure arithmetic under the DES).
// ---------------------------------------------------------------------------

TEST(TierDeterminism, FetchPathIdenticalAcrossKernelThreads) {
  auto run_once = [](int threads) {
    parallel::set_global_threads(threads);
    Sim sim(tier_acr_config(), 4, 31);
    double mid = reference().finish_time * 0.5;
    sim.runtime.engine().schedule_at(mid, [&sim] {
      sim.runtime.cluster().kill_role(0, 4);
      sim.runtime.cluster().kill_role(1, 4);
    });
    RunSummary s = sim.runtime.run(30.0);
    ACR_REQUIRE(s.complete, "determinism run must complete");
    sim.runtime.engine().run_until(s.finish_time + 0.05);
    struct Out {
      double finish;
      std::uint64_t digest, waves, flushes;
    };
    return Out{s.finish_time, verified_digest(sim.runtime), s.l2_fetch_waves,
               s.l2_flushes};
  };
  auto serial = run_once(0);
  auto threaded = run_once(3);
  parallel::set_global_threads(0);
  EXPECT_EQ(serial.finish, threaded.finish);
  EXPECT_EQ(serial.digest, threaded.digest);
  EXPECT_EQ(serial.waves, threaded.waves);
  EXPECT_EQ(serial.flushes, threaded.flushes);
}

// ---------------------------------------------------------------------------
// Analytic tier model vs the simulator (fig7-style tolerance).
// ---------------------------------------------------------------------------

TEST(TierModel, SimulatedFetchReworkWithinModelEnvelope) {
  // One catastrophic (buddy-pair) event mid-run. The model says the event
  // costs fetch_cost + lag/2 of rework; the simulator's cost is the
  // difference between the faulted and fault-free finish times. The two
  // must agree within a fig7-style factor-of-two envelope (the model is
  // first-order: it ignores heartbeat detection latency and barriers).
  Sim sim(tier_acr_config(), 4, 31);
  double mid = reference().finish_time * 0.5;
  sim.runtime.engine().schedule_at(mid, [&sim] {
    sim.runtime.cluster().kill_role(0, 4);
    sim.runtime.cluster().kill_role(1, 4);
  });
  RunSummary s = sim.runtime.run(30.0);
  ASSERT_TRUE(s.complete);
  ASSERT_GE(s.l2_fetch_waves, 1u);
  double sim_cost = s.finish_time - reference().finish_time;

  const AcrConfig& ac = sim.runtime.config();
  double tau = ac.checkpoint_interval;
  // Fetch price actually charged by the DES: one L2 read per role image.
  double blob = static_cast<double>(s.l2_flush_bytes) /
                static_cast<double>(s.l2_flushes);
  double fetch_cost = ac.tier.latency + blob / ac.tier.bandwidth;
  // Model's per-event rework: fetch + up to one flush window of redone
  // progress (expected half, bounded by a full window).
  double lag = static_cast<double>(ac.tier.flush_interval) * tau;
  double lo = fetch_cost;              // rolled back almost nothing
  double hi = 2.0 * (fetch_cost + lag) + 0.01;  // detection + barriers slack
  EXPECT_GE(sim_cost, lo * 0.5);
  EXPECT_LE(sim_cost, hi)
      << "sim rework " << sim_cost << " outside model envelope [" << lo * 0.5
      << ", " << hi << "]";
}

TEST(TierModel, TieredModelPrefersFetchOverScratch) {
  model::SystemParams p;
  p.work = 120.0 * 3600.0;
  p.checkpoint_cost = 30.0;
  p.restart_hard = 30.0;
  p.restart_sdc = 30.0;
  p.socket_mtbf_hard = 50.0 * 365.25 * 86400.0;
  p.sdc_fit_per_socket = 100.0;
  p.sockets_per_replica = 32768;
  model::AcrModel m(p);

  model::TierParams tier;
  tier.flush_interval = 1;
  tier.fetch_cost = 120.0;
  tier.catastrophic_mtbf = 24.0 * 3600.0;  // one L1-defeating event per day
  model::TieredEvaluation e =
      m.evaluate_tiered(model::Scheme::Strong, tier);
  ASSERT_FALSE(std::isinf(e.total_time));
  // Fetching the newest flushed epoch strictly beats losing all progress.
  EXPECT_GT(e.speedup, 1.0);
  EXPECT_GT(e.total_time, e.base.total_time);  // the tier is not free
  // Rarer flushes lengthen the rollback and erode the win.
  model::TierParams sparse = tier;
  sparse.flush_interval = 16;
  model::TieredEvaluation e16 =
      m.evaluate_tiered(model::Scheme::Strong, sparse);
  EXPECT_GT(e16.flush_lag, e.flush_lag);
  EXPECT_GT(e16.total_time, e.total_time);
  // No catastrophes: the tiered model degenerates to the single-tier one.
  model::TierParams none = tier;
  none.catastrophic_mtbf = 0.0;
  model::TieredEvaluation e0 =
      m.evaluate_tiered(model::Scheme::Strong, none);
  EXPECT_DOUBLE_EQ(e0.total_time, e0.base.total_time);
  EXPECT_DOUBLE_EQ(e0.rework_catastrophic, 0.0);
}

}  // namespace
}  // namespace acr
