// Kernel-layer tests: hardware/portable CRC32C equivalence, digest combine
// algebra, chunk-parallel drivers, the worker pool, and — the contract that
// makes parallelism below the DES legal at all — bitwise-identical driver
// scenarios across every --kernel-impl / --kernel-threads choice.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "acr/runtime.h"
#include "apps/jacobi3d.h"
#include "checksum/crc32c.h"
#include "checksum/fletcher.h"
#include "checksum/kernels.h"
#include "common/rng.h"
#include "failure/distributions.h"
#include "parallel/pool.h"

namespace acr {
namespace {

using checksum::KernelImpl;

/// Pin the dispatched CRC32C kernel for one test scope.
struct ScopedImpl {
  explicit ScopedImpl(KernelImpl impl) { checksum::set_kernel_impl(impl); }
  ~ScopedImpl() { checksum::set_kernel_impl(KernelImpl::Auto); }
};

/// Pin the global kernel pool's worker count for one test scope.
struct ScopedThreads {
  explicit ScopedThreads(int n) { parallel::set_global_threads(n); }
  ~ScopedThreads() { parallel::set_global_threads(0); }
};

std::vector<std::byte> random_bytes(std::size_t n, std::uint64_t seed) {
  std::vector<std::byte> v(n);
  Pcg32 rng(seed, 17);
  for (auto& b : v) b = static_cast<std::byte>(rng.bounded(256));
  return v;
}

/// Independent bit-serial CRC32C reference (no tables, no intrinsics):
/// pins both production kernels to the Castagnoli definition.
std::uint32_t ref_crc32c(std::span<const std::byte> data) {
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::byte b : data) {
    crc ^= static_cast<std::uint32_t>(b);
    for (int i = 0; i < 8; ++i)
      crc = (crc >> 1) ^ (0x82F63B78u & (0u - (crc & 1u)));
  }
  return crc ^ 0xFFFFFFFFu;
}

// ---------------------------------------------------------------------------
// Dispatch + kernel equivalence.
// ---------------------------------------------------------------------------

TEST(KernelDispatch, PortableSelectable) {
  ScopedImpl pin(KernelImpl::Portable);
  EXPECT_STREQ(checksum::active_crc32c_kernel(), "portable");
  EXPECT_EQ(checksum::kernel_impl(), KernelImpl::Portable);
}

TEST(KernelDispatch, AutoPicksHwWhenAvailable) {
  ScopedImpl pin(KernelImpl::Auto);
  if (checksum::hw_kernels_available())
    EXPECT_STREQ(checksum::active_crc32c_kernel(), "hw");
  else
    EXPECT_STREQ(checksum::active_crc32c_kernel(), "portable");
}

TEST(KernelEquivalence, PortableMatchesReferenceAllSmallSizes) {
  auto buf = random_bytes(300, 1);
  for (std::size_t n = 0; n <= buf.size(); ++n) {
    std::span<const std::byte> s(buf.data(), n);
    EXPECT_EQ(checksum::kernels::crc32c_update_portable(0xFFFFFFFFu, s) ^
                  0xFFFFFFFFu,
              ref_crc32c(s))
        << "size " << n;
  }
}

TEST(KernelEquivalence, HwMatchesPortableAllSizesAndOffsets) {
  if (!checksum::hw_kernels_available())
    GTEST_SKIP() << "no SSE4.2 on this CPU";
  // Sizes 0..N and every alignment offset 0..7 — exercises the hw kernel's
  // head/word/tail split and the portable kernel's 8-byte loop + tail,
  // including 1–7-byte tails.
  auto buf = random_bytes(300 + 8, 2);
  for (std::size_t off = 0; off < 8; ++off) {
    for (std::size_t n = 0; n + off <= buf.size(); ++n) {
      std::span<const std::byte> s(buf.data() + off, n);
      EXPECT_EQ(checksum::kernels::crc32c_update_hw(0x12345678u, s),
                checksum::kernels::crc32c_update_portable(0x12345678u, s))
          << "offset " << off << " size " << n;
    }
  }
}

TEST(KernelEquivalence, HwMatchesPortableLargeBuffers) {
  if (!checksum::hw_kernels_available())
    GTEST_SKIP() << "no SSE4.2 on this CPU";
  for (std::size_t n : {std::size_t{4096}, std::size_t{65536},
                        std::size_t{1 << 20} | 5}) {
    auto buf = random_bytes(n, n);
    std::span<const std::byte> s(buf);
    std::uint32_t p, h;
    {
      ScopedImpl pin(KernelImpl::Portable);
      p = checksum::crc32c(s);
    }
    {
      ScopedImpl pin(KernelImpl::Hw);
      h = checksum::crc32c(s);
    }
    EXPECT_EQ(p, h) << "size " << n;
  }
}

TEST(KernelEquivalence, StreamingAppendComposesAtAnyGranularity) {
  auto buf = random_bytes(10000, 3);
  std::uint32_t oneshot = checksum::crc32c(buf);
  for (KernelImpl impl : {KernelImpl::Portable, KernelImpl::Hw}) {
    if (impl == KernelImpl::Hw && !checksum::hw_kernels_available()) continue;
    ScopedImpl pin(impl);
    checksum::Crc32c inc;
    Pcg32 rng(7, 7);
    std::size_t pos = 0;
    while (pos < buf.size()) {
      std::size_t chunk =
          std::min<std::size_t>(1 + rng.bounded(777), buf.size() - pos);
      inc.append(std::span<const std::byte>(buf).subspan(pos, chunk));
      pos += chunk;
    }
    EXPECT_EQ(inc.digest(), oneshot);
  }
}

// ---------------------------------------------------------------------------
// Combine operators.
// ---------------------------------------------------------------------------

TEST(Combine, Crc32cSplitAnywhere) {
  auto buf = random_bytes(257, 4);
  std::uint32_t whole = checksum::crc32c(buf);
  std::span<const std::byte> s(buf);
  for (std::size_t cut = 0; cut <= buf.size(); ++cut) {
    std::uint32_t a = checksum::crc32c(s.subspan(0, cut));
    std::uint32_t b = checksum::crc32c(s.subspan(cut));
    EXPECT_EQ(checksum::crc32c_combine(a, b, buf.size() - cut), whole)
        << "cut " << cut;
  }
}

TEST(Combine, Crc32cManyChunks) {
  auto buf = random_bytes(100000, 5);
  std::span<const std::byte> s(buf);
  std::uint32_t whole = checksum::crc32c(buf);
  // Uneven chunking including 1–7-byte tails.
  for (std::size_t chunk : {std::size_t{1}, std::size_t{7}, std::size_t{4096},
                            std::size_t{33333}}) {
    std::uint32_t acc = checksum::crc32c(s.subspan(0, std::min(chunk, s.size())));
    for (std::size_t pos = std::min(chunk, s.size()); pos < s.size();) {
      std::size_t len = std::min(chunk, s.size() - pos);
      acc = checksum::crc32c_combine(acc, checksum::crc32c(s.subspan(pos, len)),
                                     len);
      pos += len;
    }
    EXPECT_EQ(acc, whole) << "chunk " << chunk;
  }
}

TEST(Combine, Fletcher64WordAlignedSplits) {
  // One-shot over the concatenation vs combine at every word-aligned cut,
  // with overall buffer sizes exercising every 1–3-byte padded tail.
  for (std::size_t total : {std::size_t{256}, std::size_t{257},
                            std::size_t{258}, std::size_t{259}}) {
    auto buf = random_bytes(total, 6 + total);
    std::span<const std::byte> s(buf);
    std::uint64_t whole = checksum::fletcher64(buf);
    for (std::size_t cut = 0; cut <= total; cut += 4) {
      std::uint64_t a = checksum::fletcher64(s.subspan(0, cut));
      std::uint64_t b = checksum::fletcher64(s.subspan(cut));
      EXPECT_EQ(checksum::fletcher64_combine(a, b, total - cut), whole)
          << "total " << total << " cut " << cut;
    }
  }
}

TEST(Combine, Fletcher32WordAlignedSplits) {
  for (std::size_t total : {std::size_t{128}, std::size_t{129}}) {
    auto buf = random_bytes(total, 9 + total);
    std::span<const std::byte> s(buf);
    std::uint32_t whole = checksum::fletcher32(buf);
    for (std::size_t cut = 0; cut <= total; cut += 2) {
      std::uint32_t a = checksum::fletcher32(s.subspan(0, cut));
      std::uint32_t b = checksum::fletcher32(s.subspan(cut));
      EXPECT_EQ(checksum::fletcher32_combine(a, b, total - cut), whole)
          << "total " << total << " cut " << cut;
    }
  }
}

TEST(Combine, Fletcher32ZeroResidueCanonicalForm) {
  // An all-0xFF buffer drives both sums to the zero residue, which this
  // fletcher32 represents as 0xFFFF; the combine must reproduce that, not
  // 0x0000.
  std::vector<std::byte> zeros(64, std::byte{0});
  std::span<const std::byte> s(zeros);
  std::uint32_t whole = checksum::fletcher32(zeros);
  std::uint32_t a = checksum::fletcher32(s.subspan(0, 32));
  std::uint32_t b = checksum::fletcher32(s.subspan(32));
  EXPECT_EQ(checksum::fletcher32_combine(a, b, 32), whole);
}

TEST(Combine, Crc32cFlipDeltaMatchesActualFlip) {
  auto buf = random_bytes(4096, 11);
  std::uint32_t clean = checksum::crc32c(buf);
  Pcg32 rng(13, 13);
  for (int trial = 0; trial < 200; ++trial) {
    std::size_t byte = rng.bounded(static_cast<std::uint32_t>(buf.size()));
    int bit = static_cast<int>(rng.bounded(8));
    buf[byte] ^= static_cast<std::byte>(1u << bit);
    std::uint32_t damaged = checksum::crc32c(buf);
    buf[byte] ^= static_cast<std::byte>(1u << bit);
    std::uint32_t delta =
        checksum::crc32c_flip_delta(buf.size(), byte, bit);
    EXPECT_EQ(clean ^ delta, damaged) << "byte " << byte << " bit " << bit;
    EXPECT_NE(delta, 0u);  // CRC32C detects every single-bit error
  }
}

// ---------------------------------------------------------------------------
// Chunk-parallel drivers.
// ---------------------------------------------------------------------------

TEST(Chunked, DigestsMatchOneShotAtAnyThreadCount) {
  // Sizes straddling the chunk boundary, plus unaligned base offsets.
  const std::size_t kC = checksum::kDigestChunk;
  auto buf = random_bytes(3 * kC + 13, 21);
  for (std::size_t off : {std::size_t{0}, std::size_t{1}, std::size_t{7}}) {
    for (std::size_t n : {std::size_t{0}, std::size_t{100}, kC - 1, kC,
                          2 * kC + 5, 3 * kC + 1}) {
      std::span<const std::byte> s(buf.data() + off, n);
      std::uint32_t crc_serial;
      std::uint64_t fl_serial;
      {
        ScopedThreads t(0);
        crc_serial = checksum::crc32c_chunked(s);
        fl_serial = checksum::fletcher64_chunked(s);
      }
      EXPECT_EQ(crc_serial, checksum::crc32c(s));
      EXPECT_EQ(fl_serial, checksum::fletcher64(s));
      {
        ScopedThreads t(3);
        EXPECT_EQ(checksum::crc32c_chunked(s), crc_serial)
            << "off " << off << " n " << n;
        EXPECT_EQ(checksum::fletcher64_chunked(s), fl_serial)
            << "off " << off << " n " << n;
      }
    }
  }
}

TEST(Chunked, XorFoldMatchesScalarAndZeroExtends) {
  const std::size_t kC = checksum::kDigestChunk;
  auto add = random_bytes(2 * kC + 11, 22);
  // Scalar reference.
  std::vector<std::byte> want(kC / 2, std::byte{0x5A});
  std::vector<std::byte> got = want;
  {
    std::vector<std::byte>& acc = want;
    if (add.size() > acc.size()) acc.resize(add.size(), std::byte{0});
    for (std::size_t i = 0; i < add.size(); ++i) acc[i] ^= add[i];
  }
  {
    ScopedThreads t(3);
    checksum::xor_fold_chunked(got, add);
  }
  EXPECT_EQ(got, want);
  // Serial chunked path too.
  std::vector<std::byte> serial(kC / 2, std::byte{0x5A});
  checksum::xor_fold_chunked(serial, add);
  EXPECT_EQ(serial, want);
}

// ---------------------------------------------------------------------------
// Pool.
// ---------------------------------------------------------------------------

TEST(Pool, RunsEveryIndexExactlyOnce) {
  parallel::Pool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.for_each_index(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < hits.size(); ++i)
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(Pool, ReusableAcrossJobs) {
  parallel::Pool pool(2);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> sum{0};
    pool.for_each_index(17, [&](std::size_t) { ++sum; });
    ASSERT_EQ(sum.load(), 17) << "round " << round;
  }
}

TEST(Pool, SerialPoolRunsInline) {
  parallel::Pool pool(0);
  EXPECT_EQ(pool.threads(), 0);
  std::thread::id caller = std::this_thread::get_id();
  pool.for_each_index(5, [&](std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(Pool, CopyBytesMatchesMemcpy) {
  auto src = random_bytes((std::size_t{1} << 21) + 3, 33);
  std::vector<std::byte> dst(src.size());
  ScopedThreads t(3);
  parallel::copy_bytes(dst.data(), src.data(), src.size());
  EXPECT_EQ(dst, src);
}

// ---------------------------------------------------------------------------
// Determinism: driver scenarios bitwise identical across kernel configs.
// ---------------------------------------------------------------------------

void expect_summaries_equal(const RunSummary& a, const RunSummary& b,
                            const char* what) {
  EXPECT_EQ(a.complete, b.complete) << what;
  EXPECT_EQ(a.failed, b.failed) << what;
  EXPECT_EQ(a.finish_time, b.finish_time) << what;  // exact, not approx
  EXPECT_EQ(a.checkpoints, b.checkpoints) << what;
  EXPECT_EQ(a.hard_failures, b.hard_failures) << what;
  EXPECT_EQ(a.sdc_injected, b.sdc_injected) << what;
  EXPECT_EQ(a.sdc_detected, b.sdc_detected) << what;
  EXPECT_EQ(a.recoveries, b.recoveries) << what;
  EXPECT_EQ(a.scratch_restarts, b.scratch_restarts) << what;
  EXPECT_EQ(a.net_frames, b.net_frames) << what;
  EXPECT_EQ(a.net_drops, b.net_drops) << what;
  EXPECT_EQ(a.net_duplicates, b.net_duplicates) << what;
  EXPECT_EQ(a.net_corruptions, b.net_corruptions) << what;
  EXPECT_EQ(a.net_retransmits, b.net_retransmits) << what;
  EXPECT_EQ(a.net_crc_drops, b.net_crc_drops) << what;
  EXPECT_EQ(a.net_stale_epoch_drops, b.net_stale_epoch_drops) << what;
  EXPECT_EQ(a.net_link_failures, b.net_link_failures) << what;
  EXPECT_STREQ(a.ckpt_scheme, b.ckpt_scheme) << what;
  EXPECT_EQ(a.parity_chunks_sent, b.parity_chunks_sent) << what;
  EXPECT_EQ(a.parity_bytes_sent, b.parity_bytes_sent) << what;
  EXPECT_EQ(a.xor_rebuilds, b.xor_rebuilds) << what;
}

/// Fletcher-64 over the best verified image of every node role — the same
/// end-state fingerprint the soak tests use, valid even mid-recovery.
std::uint64_t final_state_digest(AcrRuntime& runtime) {
  checksum::Fletcher64 f;
  for (int i = 0; i < runtime.cluster().nodes_per_replica(); ++i) {
    NodeAgent& a = runtime.agent_at(0, i);
    NodeAgent& b = runtime.agent_at(1, i);
    const NodeAgent& best = a.verified_epoch() >= b.verified_epoch() ? a : b;
    f.append(best.verified_image());
  }
  return f.digest();
}

struct ScenarioResult {
  RunSummary summary;
  std::uint64_t state_digest = 0;
  std::size_t trace_events = 0;
};

/// Partner scenario: checksum detection (buddy digest path), SDC + hard
/// faults, lossy/corrupting network (frame CRC + flip-delta path).
ScenarioResult run_partner_scenario() {
  apps::Jacobi3DConfig j;
  j.tasks_x = j.tasks_y = 2;
  j.tasks_z = 2;
  j.block_x = j.block_y = j.block_z = 4;
  j.iterations = 25;
  j.slots_per_node = 2;
  j.seconds_per_point = 1e-5;
  AcrConfig ac;
  ac.detection = SdcDetection::Checksum;
  ac.checkpoint_interval = 0.002;
  ac.heartbeat_period = 0.001;
  ac.heartbeat_timeout = 0.005;
  rt::ClusterConfig cc;
  cc.nodes_per_replica = j.nodes_needed();
  cc.spare_nodes = 2;
  cc.net_faults.drop_rate = 0.02;
  cc.net_faults.corrupt_rate = 0.02;
  AcrRuntime runtime(ac, cc);
  runtime.set_task_factory(j.factory());
  runtime.setup();
  FaultPlan plan;
  plan.arrivals = std::make_shared<failure::RenewalProcess>(
      std::make_shared<failure::Exponential>(0.003));
  plan.sdc_fraction = 1.0;  // soft errors: exercises the digest compare
  runtime.set_fault_plan(plan);
  ScenarioResult res;
  res.summary = runtime.run(30.0);
  if (res.summary.complete)
    runtime.engine().run_until(res.summary.finish_time + 0.05);
  res.state_digest = final_state_digest(runtime);
  res.trace_events = runtime.trace().events().size();
  return res;
}

/// Xor scenario: RAID-5 parity build over the kernel xor fold, plus a hard
/// fault to trigger a rebuild.
ScenarioResult run_xor_scenario() {
  apps::Jacobi3DConfig j;
  j.tasks_x = j.tasks_y = 2;
  j.tasks_z = 4;
  j.block_x = j.block_y = j.block_z = 4;
  j.iterations = 30;
  j.slots_per_node = 2;  // 8 nodes per replica -> 2 xor groups of 4
  j.seconds_per_point = 1e-5;
  AcrConfig ac;
  ac.scheme = ResilienceScheme::Strong;
  ac.redundancy = ckpt::Scheme::Xor;
  ac.xor_group_size = 4;
  ac.checkpoint_interval = 0.003;
  ac.heartbeat_period = 0.0004;
  ac.heartbeat_timeout = 0.0016;
  rt::ClusterConfig cc;
  cc.nodes_per_replica = j.nodes_needed();
  cc.spare_nodes = 8;
  AcrRuntime runtime(ac, cc);
  runtime.set_task_factory(j.factory());
  runtime.setup();
  FaultPlan plan;
  plan.arrivals = std::make_shared<failure::RenewalProcess>(
      std::make_shared<failure::Exponential>(0.01));
  plan.sdc_fraction = 0.0;  // hard faults: exercises parity rebuild
  runtime.set_fault_plan(plan);
  ScenarioResult res;
  res.summary = runtime.run(30.0);
  if (res.summary.complete)
    runtime.engine().run_until(res.summary.finish_time + 0.05);
  res.state_digest = final_state_digest(runtime);
  res.trace_events = runtime.trace().events().size();
  return res;
}

template <typename Scenario>
void check_scenario_determinism(Scenario scenario, const char* name) {
  ScenarioResult base;
  {
    ScopedImpl impl(KernelImpl::Portable);
    ScopedThreads t(0);
    base = scenario();
  }
  struct Config {
    KernelImpl impl;
    int threads;
    const char* label;
  };
  std::vector<Config> configs = {{KernelImpl::Portable, 4, "portable/4"}};
  if (checksum::hw_kernels_available()) {
    configs.push_back({KernelImpl::Hw, 0, "hw/0"});
    configs.push_back({KernelImpl::Hw, 4, "hw/4"});
  }
  for (const Config& c : configs) {
    ScopedImpl impl(c.impl);
    ScopedThreads t(c.threads);
    ScenarioResult got = scenario();
    std::string what = std::string(name) + " " + c.label;
    expect_summaries_equal(base.summary, got.summary, what.c_str());
    EXPECT_EQ(base.state_digest, got.state_digest) << what;
    EXPECT_EQ(base.trace_events, got.trace_events) << what;
  }
}

// The determinism check is only meaningful if the scenarios actually drive
// the kernel-touched paths: digests, frame CRCs, parity folds.
TEST(KernelDeterminism, ScenariosExerciseKernelPaths) {
  ScenarioResult partner = run_partner_scenario();
  EXPECT_GT(partner.summary.checkpoints, 0u);
  EXPECT_GT(partner.summary.net_frames, 0u);       // frame CRC path
  EXPECT_GT(partner.summary.net_corruptions, 0u);  // flip-delta path
  EXPECT_GT(partner.summary.sdc_injected, 0u);     // digest-compare path
  ScenarioResult xorr = run_xor_scenario();
  EXPECT_GT(xorr.summary.checkpoints, 0u);
  EXPECT_GT(xorr.summary.parity_chunks_sent, 0u);  // xor fold path
  EXPECT_GT(xorr.summary.hard_failures, 0u);       // rebuild/restart path
}

TEST(KernelDeterminism, PartnerScenarioBitwiseIdentical) {
  check_scenario_determinism(run_partner_scenario, "partner");
}

TEST(KernelDeterminism, XorScenarioBitwiseIdentical) {
  check_scenario_determinism(run_xor_scenario, "xor");
}

}  // namespace
}  // namespace acr
