// Command-line parser tests.
#include <gtest/gtest.h>

#include "common/cli.h"

namespace acr {
namespace {

struct Args {
  bool verbose = false;
  int count = 3;
  double rate = 1.5;
  std::uint64_t seed = 7;
  std::string name = "default";
  std::string mode = "fast";
};

CliParser make_parser(Args& a) {
  CliParser p("test program");
  p.add_flag("verbose", &a.verbose, "chatty output");
  p.add_int("count", &a.count, "how many");
  p.add_double("rate", &a.rate, "events per second");
  p.add_uint64("seed", &a.seed, "rng seed");
  p.add_string("name", &a.name, "label");
  p.add_choice("mode", &a.mode, {"fast", "slow"}, "speed");
  return p;
}

bool parse(CliParser& p, std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return p.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, DefaultsSurviveEmptyArgv) {
  Args a;
  CliParser p = make_parser(a);
  EXPECT_TRUE(parse(p, {}));
  EXPECT_EQ(a.count, 3);
  EXPECT_EQ(a.mode, "fast");
}

TEST(Cli, EqualsAndSpaceFormsBothWork) {
  Args a;
  CliParser p = make_parser(a);
  EXPECT_TRUE(parse(p, {"--count=9", "--rate", "2.25", "--name=x",
                        "--seed", "123"}));
  EXPECT_EQ(a.count, 9);
  EXPECT_DOUBLE_EQ(a.rate, 2.25);
  EXPECT_EQ(a.name, "x");
  EXPECT_EQ(a.seed, 123u);
}

TEST(Cli, BoolFlagAndNegation) {
  Args a;
  CliParser p = make_parser(a);
  EXPECT_TRUE(parse(p, {"--verbose"}));
  EXPECT_TRUE(a.verbose);
  Args b;
  CliParser q = make_parser(b);
  b.verbose = true;
  EXPECT_TRUE(parse(q, {"--no-verbose"}));
  EXPECT_FALSE(b.verbose);
}

TEST(Cli, ChoiceValidation) {
  Args a;
  CliParser p = make_parser(a);
  EXPECT_TRUE(parse(p, {"--mode=slow"}));
  EXPECT_EQ(a.mode, "slow");
  Args b;
  CliParser q = make_parser(b);
  EXPECT_FALSE(parse(q, {"--mode=medium"}));
}

TEST(Cli, RejectsUnknownFlagsAndBadValues) {
  Args a;
  CliParser p = make_parser(a);
  EXPECT_FALSE(parse(p, {"--bogus=1"}));
  Args b;
  CliParser q = make_parser(b);
  EXPECT_FALSE(parse(q, {"--count=ten"}));
  Args c;
  CliParser r = make_parser(c);
  EXPECT_FALSE(parse(r, {"--count"}));  // missing value
  Args d;
  CliParser s = make_parser(d);
  EXPECT_FALSE(parse(s, {"positional"}));
}

TEST(Cli, HelpReturnsFalseAndUsageListsOptions) {
  Args a;
  CliParser p = make_parser(a);
  EXPECT_FALSE(parse(p, {"--help"}));
  std::string u = p.usage();
  for (const char* opt : {"--verbose", "--count", "--rate", "--mode"})
    EXPECT_NE(u.find(opt), std::string::npos) << opt;
  EXPECT_NE(u.find("{fast,slow}"), std::string::npos);
}

}  // namespace
}  // namespace acr
