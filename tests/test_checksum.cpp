// Fletcher checksum tests: reference values, incremental equivalence,
// position dependence, and flip-detection properties.
#include <gtest/gtest.h>

#include <cstring>
#include <string_view>

#include "checksum/fletcher.h"
#include "common/rng.h"

namespace acr::checksum {
namespace {

std::vector<std::byte> to_bytes(std::string_view s) {
  std::vector<std::byte> v(s.size());
  std::memcpy(v.data(), s.data(), s.size());
  return v;
}

TEST(Fletcher32, KnownVectors) {
  // Reference values from the Fletcher checksum literature (little-endian
  // 16-bit words, odd byte zero-padded).
  EXPECT_EQ(fletcher32(to_bytes("abcde")), 0xF04FC729u);
  EXPECT_EQ(fletcher32(to_bytes("abcdef")), 0x56502D2Au);
  EXPECT_EQ(fletcher32(to_bytes("abcdefgh")), 0xEBE19591u);
}

TEST(Fletcher64, EmptyAndTiny) {
  EXPECT_EQ(fletcher64({}), 0u);
  auto one = to_bytes("a");
  // One byte zero-padded to the word 0x00000061: sum1 = sum2 = 0x61.
  EXPECT_EQ(fletcher64(one), (0x61ULL << 32) | 0x61ULL);
}

TEST(Fletcher64, IncrementalMatchesOneShotOnWordBoundaries) {
  Pcg32 rng(11, 1);
  std::vector<std::byte> data(4096);
  for (auto& b : data) b = static_cast<std::byte>(rng.bounded(256));
  std::uint64_t oneshot = fletcher64(data);

  Fletcher64 inc;
  std::size_t pos = 0;
  // 4-byte-multiple chunks except possibly the last.
  while (pos < data.size()) {
    std::size_t chunk = std::min<std::size_t>(4 * (1 + rng.bounded(64)),
                                              data.size() - pos);
    inc.append(std::span<const std::byte>(data).subspan(pos, chunk));
    pos += chunk;
  }
  EXPECT_EQ(inc.digest(), oneshot);
  EXPECT_EQ(inc.size(), data.size());
}

TEST(Fletcher64, PositionDependent) {
  // Swapping two words must change the digest (a plain sum would not).
  std::vector<std::byte> a = to_bytes("AAAABBBBCCCC");
  std::vector<std::byte> b = to_bytes("BBBBAAAACCCC");
  EXPECT_NE(fletcher64(a), fletcher64(b));
}

TEST(Fletcher64, LargeBufferDoesNotOverflow) {
  // Exercise the periodic modular reduction with > 92679 words.
  std::vector<std::byte> data(4 * 200000, std::byte{0xFF});
  std::uint64_t d = fletcher64(data);
  // Both halves must stay below the modulus.
  EXPECT_LT(d & 0xFFFFFFFFULL, 0xFFFFFFFFULL);
  EXPECT_LT(d >> 32, 0xFFFFFFFFULL);
  // And match a two-part incremental fold.
  Fletcher64 inc;
  inc.append(std::span<const std::byte>(data).subspan(0, data.size() / 2));
  inc.append(std::span<const std::byte>(data).subspan(data.size() / 2));
  EXPECT_EQ(inc.digest(), d);
}

class FletcherFlip : public ::testing::TestWithParam<int> {};

TEST_P(FletcherFlip, DetectsEverySingleBitFlip) {
  Pcg32 rng(static_cast<std::uint64_t>(GetParam()), 2);
  std::vector<std::byte> data(257);  // odd size: exercises padding
  for (auto& b : data) b = static_cast<std::byte>(rng.bounded(256));
  std::uint64_t clean = fletcher64(data);
  for (std::size_t byte = 0; byte < data.size(); ++byte) {
    for (unsigned bit = 0; bit < 8; ++bit) {
      data[byte] ^= static_cast<std::byte>(1u << bit);
      EXPECT_NE(fletcher64(data), clean)
          << "missed flip at byte " << byte << " bit " << bit;
      data[byte] ^= static_cast<std::byte>(1u << bit);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FletcherFlip, ::testing::Range(0, 3));

}  // namespace
}  // namespace acr::checksum
