// Mini-application tests: every app runs under full ACR protection with
// its real communication pattern (halo exchange, butterfly allreduce,
// migration), replicas stay bit-identical, PUP round-trips, physics sanity,
// and failure recovery reproduces the failure-free result.
#include <gtest/gtest.h>

#include "acr/runtime.h"
#include "apps/hpccg.h"
#include "apps/jacobi3d.h"
#include "apps/leanmd.h"
#include "apps/minilulesh.h"
#include "apps/minimd.h"
#include "apps/table2.h"
#include "checksum/fletcher.h"

namespace acr::apps {
namespace {

AcrConfig fast_acr() {
  AcrConfig cfg;
  cfg.checkpoint_interval = 0.004;
  cfg.heartbeat_period = 0.0005;
  cfg.heartbeat_timeout = 0.002;
  return cfg;
}

std::uint64_t replica_digest(AcrRuntime& runtime, int replica) {
  checksum::Fletcher64 f;
  for (int i = 0; i < runtime.cluster().nodes_per_replica(); ++i) {
    pup::Checkpoint c = runtime.cluster().node_at(replica, i).pack_state();
    f.append(c.bytes());
  }
  return f.digest();
}

struct AppCase {
  const char* name;
  rt::Cluster::TaskFactory factory;
  int nodes_per_replica;
};

AppCase make_case(int which) {
  switch (which) {
    case 0: {
      Jacobi3DConfig cfg;
      cfg.tasks_x = cfg.tasks_y = cfg.tasks_z = 2;
      cfg.block_x = cfg.block_y = cfg.block_z = 4;
      cfg.iterations = 16;
      cfg.slots_per_node = 2;
      cfg.seconds_per_point = 1e-5;
      return {"Jacobi3D-charm", cfg.factory(), cfg.nodes_needed()};
    }
    case 1: {
      Jacobi3DConfig cfg;  // AMPI flavour: one rank-task per node
      cfg.tasks_x = cfg.tasks_y = 2;
      cfg.tasks_z = 1;
      cfg.block_x = cfg.block_y = cfg.block_z = 4;
      cfg.iterations = 16;
      cfg.slots_per_node = 1;
      cfg.seconds_per_point = 1e-5;
      return {"Jacobi3D-ampi", cfg.factory(), cfg.nodes_needed()};
    }
    case 2: {
      HpccgConfig cfg;
      cfg.nx = cfg.ny = cfg.nz = 6;
      cfg.num_tasks = 4;
      cfg.iterations = 12;
      cfg.seconds_per_flop = 1e-7;
      return {"HPCCG", cfg.factory(), cfg.nodes_needed()};
    }
    case 3: {
      MiniLuleshConfig cfg;
      cfg.ex = cfg.ey = cfg.ez = 5;
      cfg.num_tasks = 4;
      cfg.iterations = 12;
      cfg.seconds_per_element = 2e-5;
      return {"MiniLulesh", cfg.factory(), cfg.nodes_needed()};
    }
    case 4: {
      LeanMdConfig cfg;
      cfg.atoms_per_task = 32;
      cfg.num_tasks = 4;
      cfg.slots_per_node = 2;
      cfg.iterations = 12;
      cfg.seconds_per_pair = 1e-5;
      return {"LeanMD", cfg.factory(), cfg.nodes_needed()};
    }
    default: {
      MiniMdConfig cfg;
      cfg.atoms_per_task = 32;
      cfg.num_tasks = 4;
      cfg.iterations = 12;
      cfg.seconds_per_pair = 1e-5;
      return {"miniMD", cfg.factory(), cfg.nodes_needed()};
    }
  }
}

class EveryApp : public ::testing::TestWithParam<int> {};

TEST_P(EveryApp, RunsUnderAcrWithIdenticalReplicas) {
  AppCase app = make_case(GetParam());
  rt::ClusterConfig cc;
  cc.nodes_per_replica = app.nodes_per_replica;
  cc.spare_nodes = 1;
  AcrRuntime runtime(fast_acr(), cc);
  runtime.set_task_factory(app.factory);
  runtime.setup();
  RunSummary s = runtime.run(100.0);
  ASSERT_TRUE(s.complete) << app.name;
  EXPECT_FALSE(s.failed);
  EXPECT_GT(s.checkpoints, 0u) << app.name;
  EXPECT_EQ(s.sdc_detected, 0u) << app.name
      << ": replicas diverged in a fault-free run (nondeterminism!)";
  runtime.engine().run_until(s.finish_time + 0.05);
  EXPECT_EQ(replica_digest(runtime, 0), replica_digest(runtime, 1))
      << app.name;
}

TEST_P(EveryApp, SurvivesHardFailure) {
  AppCase app = make_case(GetParam());
  rt::ClusterConfig cc;
  cc.nodes_per_replica = app.nodes_per_replica;
  cc.spare_nodes = 2;

  std::uint64_t reference;
  {
    AcrRuntime runtime(fast_acr(), cc);
    runtime.set_task_factory(app.factory);
    runtime.setup();
    RunSummary s = runtime.run(100.0);
    ASSERT_TRUE(s.complete);
    runtime.engine().run_until(s.finish_time + 0.05);
    reference = replica_digest(runtime, 0);
  }
  AcrRuntime runtime(fast_acr(), cc);
  runtime.set_task_factory(app.factory);
  runtime.setup();
  int victim = app.nodes_per_replica - 1;
  runtime.engine().schedule_at(0.006, [&runtime, victim] {
    runtime.cluster().trace().record(runtime.engine().now(),
                                     rt::TraceKind::HardFailureInjected, 1,
                                     victim);
    runtime.cluster().kill_role(1, victim);
  });
  RunSummary s = runtime.run(100.0);
  ASSERT_TRUE(s.complete) << app.name;
  EXPECT_EQ(s.recoveries, 1u);
  runtime.engine().run_until(s.finish_time + 0.1);
  EXPECT_EQ(replica_digest(runtime, 0), reference) << app.name;
  EXPECT_EQ(replica_digest(runtime, 1), reference) << app.name;
}

INSTANTIATE_TEST_SUITE_P(All, EveryApp, ::testing::Range(0, 6),
                         [](const auto& info) {
                           std::string n = make_case(info.param).name;
                           std::erase(n, '-');
                           return n;
                         });

// ---------------------------------------------------------------------------
// App-specific physics / semantics.
// ---------------------------------------------------------------------------

template <typename TaskT, typename ConfigT>
std::vector<TaskT*> run_app_collect(const ConfigT& cfg, AcrRuntime& runtime) {
  std::vector<TaskT*> tasks;
  for (int i = 0; i < runtime.cluster().nodes_per_replica(); ++i) {
    rt::Node& n = runtime.cluster().node_at(0, i);
    for (int s = 0; s < n.num_tasks(); ++s)
      tasks.push_back(static_cast<TaskT*>(&n.task(s)));
  }
  return tasks;
}

TEST(Hpccg, ResidualDecreasesMonotonically) {
  HpccgConfig cfg;
  cfg.nx = cfg.ny = cfg.nz = 6;
  cfg.num_tasks = 4;
  cfg.iterations = 10;
  cfg.seconds_per_flop = 1e-7;
  rt::ClusterConfig cc;
  cc.nodes_per_replica = cfg.nodes_needed();
  cc.spare_nodes = 0;
  AcrConfig ac = fast_acr();
  ac.periodic_checkpoints = false;
  ac.scheme = ResilienceScheme::Strong;
  ac.periodic_checkpoints = true;
  ac.checkpoint_interval = 1e6;  // effectively none; pure solve
  AcrRuntime runtime(ac, cc);
  runtime.set_task_factory(cfg.factory());
  runtime.setup();
  RunSummary s = runtime.run(100.0);
  ASSERT_TRUE(s.complete);
  auto tasks = run_app_collect<HpccgTask>(cfg, runtime);
  // CG on an SPD operator: after 10 iterations the residual should have
  // dropped dramatically from ||b||^2 (b has entries up to 27).
  // The initial residual ||b||^2 is in the thousands; 10 CG steps on this
  // well-conditioned operator shrink it by over five orders of magnitude.
  for (auto* t : tasks) {
    EXPECT_GT(t->residual_norm(), 0.0);
    EXPECT_LT(t->residual_norm(), 1.0);
  }
}

TEST(LeanMd, AtomsAreConservedAcrossMigration) {
  LeanMdConfig cfg;
  cfg.atoms_per_task = 32;
  cfg.num_tasks = 4;
  cfg.slots_per_node = 2;
  cfg.iterations = 15;
  cfg.seconds_per_pair = 1e-5;
  rt::ClusterConfig cc;
  cc.nodes_per_replica = cfg.nodes_needed();
  cc.spare_nodes = 0;
  AcrRuntime runtime(fast_acr(), cc);
  runtime.set_task_factory(cfg.factory());
  runtime.setup();
  RunSummary s = runtime.run(100.0);
  ASSERT_TRUE(s.complete);
  auto tasks = run_app_collect<LeanMdTask>(cfg, runtime);
  std::size_t total = 0;
  for (auto* t : tasks) total += t->atom_count();
  EXPECT_EQ(total, static_cast<std::size_t>(cfg.atoms_per_task) * 4);
}

TEST(MiniLulesh, ShockPropagatesAndEnergyStaysFinite) {
  MiniLuleshConfig cfg;
  cfg.ex = cfg.ey = cfg.ez = 5;
  cfg.num_tasks = 4;
  cfg.iterations = 12;
  cfg.seconds_per_element = 2e-5;
  rt::ClusterConfig cc;
  cc.nodes_per_replica = cfg.nodes_needed();
  cc.spare_nodes = 0;
  AcrRuntime runtime(fast_acr(), cc);
  runtime.set_task_factory(cfg.factory());
  runtime.setup();
  RunSummary s = runtime.run(100.0);
  ASSERT_TRUE(s.complete);
  auto tasks = run_app_collect<MiniLuleshTask>(cfg, runtime);
  for (auto* t : tasks) {
    EXPECT_TRUE(std::isfinite(t->total_energy()));
    EXPECT_GE(t->total_energy(), 0.0);
    EXPECT_GT(t->dt(), 0.0);
  }
  // The deposit sits in task 0; its energy must remain dominant but the
  // simulation must not blow up.
  EXPECT_GT(tasks[0]->total_energy(), 0.0);
}

TEST(MiniMd, NeighborListsAreBuiltAndUsed) {
  MiniMdConfig cfg;
  cfg.atoms_per_task = 32;
  cfg.num_tasks = 4;
  cfg.iterations = 8;
  cfg.seconds_per_pair = 1e-5;
  rt::ClusterConfig cc;
  cc.nodes_per_replica = cfg.nodes_needed();
  cc.spare_nodes = 0;
  AcrRuntime runtime(fast_acr(), cc);
  runtime.set_task_factory(cfg.factory());
  runtime.setup();
  RunSummary s = runtime.run(100.0);
  ASSERT_TRUE(s.complete);
  auto tasks = run_app_collect<MiniMdTask>(cfg, runtime);
  for (auto* t : tasks) {
    EXPECT_GT(t->neighbor_pairs(), 0u);
    EXPECT_TRUE(std::isfinite(t->kinetic_energy()));
  }
}

TEST(Jacobi, PupRoundTripPreservesTask) {
  Jacobi3DConfig cfg;
  cfg.tasks_x = cfg.tasks_y = cfg.tasks_z = 2;
  cfg.block_x = cfg.block_y = cfg.block_z = 4;
  Jacobi3DTask task(cfg, 3);
  // Drive init through a private path: pup on a default task requires
  // initialized state, so construct via the factory + a manual init cycle
  // is exercised in the integration tests. Here: pack of two identical
  // tasks must agree.
  Jacobi3DTask twin(cfg, 3);
  pup::Packer pa, pb;
  task.pup(pa);
  twin.pup(pb);
  pup::Checkpoint ca = pa.take(), cb = pb.take();
  EXPECT_TRUE(pup::compare_checkpoints(ca, cb).match);
}

TEST(Table2, SpecsAreConsistent) {
  for (const auto& spec : kTable2) {
    EXPECT_GT(spec.checkpoint_bytes_per_core, 0.0);
    EXPECT_GE(spec.serialization_complexity, 1.0);
    EXPECT_GT(checkpoint_bytes_per_node(spec),
              spec.checkpoint_bytes_per_core);
  }
  // The paper's memory-pressure split: stencil/solver apps high, MD low.
  EXPECT_TRUE(kTable2[0].high_memory_pressure);
  EXPECT_FALSE(kTable2[4].high_memory_pressure);
  EXPECT_FALSE(kTable2[5].high_memory_pressure);
  // MD checkpoints are orders of magnitude smaller.
  EXPECT_LT(checkpoint_bytes_per_node(kTable2[4]),
            checkpoint_bytes_per_node(kTable2[0]) / 10.0);
}

}  // namespace
}  // namespace acr::apps
