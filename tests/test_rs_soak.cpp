// Reed–Solomon redundancy fault soak.
//
// Property (ISSUE acceptance): under --ckpt-scheme=rs --rs-parity=2,
// killing TWO nodes per parity group mid-run — the correlated-burst shape
// that defeats XOR's single parity block — is survivable in place: every
// seeded run completes with the bitwise fault-free answer and ZERO
// scratch restarts. The L2 tier rides along as the documented backstop
// for the commit→parity-exchange race (a member dying before the round
// completes leaves the survivors' parity behind their verified epoch;
// the ladder then serves an L2 fetch, never a scratch restart). The
// targeted contrast tests pin the pure-L1 story: without any tier, a
// double loss in one group rebuilds through the RS wave alone, while the
// identical schedule under xor has to degrade.
//
// Runs under the `rs-soak` ctest label (CI runs it with ASan/UBSan).
#include <gtest/gtest.h>

#include <vector>

#include "acr/runtime.h"
#include "apps/jacobi3d.h"
#include "ckpt/group.h"
#include "common/rng.h"
#include "parallel/pool.h"
#include "soak_util.h"

namespace acr {
namespace {

constexpr int kGroupSize = 4;
constexpr int kParity = 2;

AcrConfig soak_acr_config(bool tier) {
  AcrConfig ac = soak::base_acr_config();  // rs requires strong
  ac.redundancy = ckpt::Scheme::Rs;
  ac.xor_group_size = kGroupSize;
  ac.rs_parity = kParity;
  if (tier) ac.tier.bandwidth = 1e9;
  return ac;
}

/// Fault-free run under the *rs* configuration: fixes the expected answer
/// and the nominal completion time the kill schedule is drawn from (and
/// doubles as a check that the GF(256) parity exchange is harmless).
const soak::Reference& reference() {
  static soak::Reference cached = soak::make_reference(
      soak::small_app(), soak_acr_config(/*tier=*/false),
      "rs soak reference run must complete");
  return cached;
}

/// One soak run: for every parity group in every replica, schedule the
/// near-simultaneous death of TWO uniformly chosen members at a uniformly
/// chosen time. The window starts at 25% of the nominal run so the first
/// epoch is always durable on L2 — the "zero scratch restarts" pin is
/// about recovery routing, not about faults outrunning the first commit.
struct SoakOutcome {
  soak::Outcome out;
  int kills = 0;
};

SoakOutcome soak_run(std::uint64_t seed) {
  apps::Jacobi3DConfig j = soak::small_app();
  rt::ClusterConfig cc;
  cc.nodes_per_replica = j.nodes_needed();
  cc.spare_nodes = 16;
  cc.seed = seed;
  AcrRuntime runtime(soak_acr_config(/*tier=*/true), cc);
  runtime.set_task_factory(j.factory());
  runtime.setup();

  ckpt::GroupMap groups(cc.nodes_per_replica, kGroupSize);
  ACR_REQUIRE(groups.enabled(), "soak requires grouping");
  Pcg32 rng(seed, 0x2505);
  SoakOutcome o;
  for (int r = 0; r < 2; ++r) {
    for (int g = 0; g < groups.num_groups(); ++g) {
      std::vector<int> members = groups.group_members(g * kGroupSize);
      // Two distinct victims per group: the shape XOR cannot absorb.
      int a = members[rng.bounded(static_cast<std::uint32_t>(members.size()))];
      int b = a;
      while (b == a)
        b = members[rng.bounded(static_cast<std::uint32_t>(members.size()))];
      double when = reference().finish_time * (0.25 + 0.70 * rng.uniform());
      double gap = 2e-4 * rng.uniform();  // second death lands mid-recovery
      for (auto [victim, at] : {std::pair{a, when}, std::pair{b, when + gap}}) {
        runtime.engine().schedule_at(at, [&runtime, r, victim] {
          if (!runtime.cluster().role_alive(r, victim)) return;
          runtime.cluster().kill_role(r, victim);
        });
        ++o.kills;
      }
    }
  }

  o.out = soak::run_and_digest(runtime);
  return o;
}

class RsSoak : public ::testing::TestWithParam<int> {};

TEST_P(RsSoak, TwoKillsPerGroupRecoverBitwiseWithoutScratch) {
  std::uint64_t seed = 240000 + static_cast<std::uint64_t>(GetParam()) * 4813;
  SoakOutcome o = soak_run(seed);
  EXPECT_EQ(o.kills, 8);  // 2 replicas x 2 groups x 2 victims
  ASSERT_TRUE(o.out.summary.complete)
      << "wedged or failed at t=" << o.out.summary.finish_time << " (seed "
      << seed << ", scratch=" << o.out.summary.scratch_restarts
      << ", waves=" << o.out.summary.l2_fetch_waves << ")";
  EXPECT_EQ(o.out.digest, reference().digest) << "seed " << seed;
  EXPECT_EQ(o.out.summary.scratch_restarts, 0u)
      << "seed " << seed << ": rs + L2 must never fall to scratch";
  EXPECT_EQ(o.out.summary.parity_rebuilds_rejected, 0u) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RsSoak, ::testing::Range(0, 110));

// ---------------------------------------------------------------------------
// Targeted scenarios (no tier: the pure-L1 story).
// ---------------------------------------------------------------------------

/// Wire a no-tier runtime and kill `dead` members of replica 0's first
/// group at mid-run, `gap` apart.
soak::Outcome run_group_kill(const AcrConfig& ac,
                             const std::vector<int>& dead, double gap) {
  apps::Jacobi3DConfig j = soak::small_app();
  rt::ClusterConfig cc;
  cc.nodes_per_replica = j.nodes_needed();
  cc.spare_nodes = 8;
  cc.seed = 91;
  AcrRuntime runtime(ac, cc);
  runtime.set_task_factory(j.factory());
  runtime.setup();
  double mid = reference().finish_time * 0.5;
  for (std::size_t i = 0; i < dead.size(); ++i) {
    int victim = dead[i];
    runtime.engine().schedule_at(mid + gap * static_cast<double>(i),
                                 [&runtime, victim] {
                                   runtime.cluster().kill_role(0, victim);
                                 });
  }
  return soak::run_and_digest(runtime);
}

/// Two dead in one group, no tier anywhere: the RS wave alone rebuilds
/// both spares bitwise — no fetch ladder, no scratch restart.
TEST(RsTargeted, TwoDeadInOneGroupRebuildViaParityAlone) {
  soak::Outcome o =
      run_group_kill(soak_acr_config(/*tier=*/false), {1, 2}, 1e-5);
  ASSERT_TRUE(o.summary.complete) << "double loss not survived under rs";
  EXPECT_EQ(o.digest, reference().digest);
  EXPECT_EQ(o.summary.scratch_restarts, 0u);
  EXPECT_EQ(o.summary.l2_fetch_waves, 0u);
  EXPECT_GE(o.summary.xor_rebuilds, 2u) << "both spares must solve locally";
  EXPECT_GT(o.summary.parity_rebuild_pieces, 0u);
  EXPECT_GT(o.summary.parity_rebuild_bytes, 0u);
}

/// The IDENTICAL schedule under xor: one parity block cannot cover two
/// losses, so the manager must degrade (scratch restart) — and the job
/// still finishes with the right answer.
TEST(RsTargeted, IdenticalScheduleUnderXorDegrades) {
  AcrConfig ac = soak_acr_config(/*tier=*/false);
  ac.redundancy = ckpt::Scheme::Xor;
  soak::Outcome o = run_group_kill(ac, {1, 2}, 1e-5);
  ASSERT_TRUE(o.summary.complete);
  EXPECT_EQ(o.digest, reference().digest);
  EXPECT_GE(o.summary.scratch_restarts, 1u)
      << "xor absorbed a double loss it has no parity for";
}

/// Three dead in one group exceed m = 2: undecodable, so the manager falls
/// down the recovery ladder (scratch without a tier) and still completes.
TEST(RsTargeted, BeyondParityBudgetFallsDownTheLadder) {
  soak::Outcome o =
      run_group_kill(soak_acr_config(/*tier=*/false), {0, 1, 2}, 1e-5);
  ASSERT_TRUE(o.summary.complete) << "triple loss wedged the job";
  EXPECT_EQ(o.digest, reference().digest);
  EXPECT_GE(o.summary.scratch_restarts, 1u);
}

/// The whole recovery path — GF(256) encode, the multi-loss Gaussian
/// solve, the restore — is bitwise invariant under the kernel pool's
/// thread count (the acceptance bit --ckpt-scheme=rs shares with every
/// other data-plane kernel).
TEST(RsTargeted, RebuildIsKernelThreadCountInvariant) {
  std::vector<std::uint64_t> digests;
  for (int threads : {0, 3}) {
    parallel::set_global_threads(threads);
    soak::Outcome o =
        run_group_kill(soak_acr_config(/*tier=*/false), {1, 3}, 1e-5);
    parallel::set_global_threads(0);
    ASSERT_TRUE(o.summary.complete) << threads << " threads";
    digests.push_back(o.digest);
  }
  EXPECT_EQ(digests[0], digests[1]);
  EXPECT_EQ(digests[0], reference().digest);
}

}  // namespace
}  // namespace acr
