// Failure distributions, arrival processes, online estimation, adaptive
// interval control, and the fault injector.
#include <gtest/gtest.h>

#include <cmath>

#include "failure/adaptive_interval.h"
#include "failure/distributions.h"
#include "failure/estimator.h"
#include "failure/injector.h"

namespace acr::failure {
namespace {

TEST(Distributions, ExponentialSampleMean) {
  Pcg32 rng(1, 1);
  Exponential d(50.0);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += d.sample(rng);
  EXPECT_NEAR(sum / n, 50.0, 2.0);
}

TEST(Distributions, WeibullWithMeanHitsMean) {
  Pcg32 rng(2, 1);
  Weibull d = Weibull::with_mean(0.6, 30.0);
  EXPECT_NEAR(d.mean(), 30.0, 1e-9);
  double sum = 0.0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) sum += d.sample(rng);
  EXPECT_NEAR(sum / n, 30.0, 2.0);
}

TEST(Distributions, WeibullShape1IsExponential) {
  // k = 1: CDF 1 - exp(-x/s); compare the empirical median with s*ln 2.
  Pcg32 rng(3, 1);
  Weibull d(1.0, 10.0);
  std::vector<double> samples;
  for (int i = 0; i < 20001; ++i) samples.push_back(d.sample(rng));
  std::nth_element(samples.begin(), samples.begin() + 10000, samples.end());
  EXPECT_NEAR(samples[10000], 10.0 * std::log(2.0), 0.4);
}

TEST(Distributions, LogNormalMean) {
  Pcg32 rng(4, 1);
  LogNormal d(1.0, 0.5);
  double sum = 0.0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) sum += d.sample(rng);
  EXPECT_NEAR(sum / n, d.mean(), d.mean() * 0.05);
}

TEST(Distributions, SamplesArePositive) {
  Pcg32 rng(5, 1);
  Weibull w(0.6, 1.0);
  Exponential e(1.0);
  LogNormal l(0.0, 1.0);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(w.sample(rng), 0.0);
    EXPECT_GT(e.sample(rng), 0.0);
    EXPECT_GT(l.sample(rng), 0.0);
  }
}

TEST(ArrivalProcess, WeibullProcessRateDecreasesForSubExponentialShape) {
  // With shape 0.6, the hazard decreases: more events early than late.
  Pcg32 rng(6, 1);
  WeibullProcess proc(0.6, 100.0);
  int early = 0, late = 0;
  for (int trial = 0; trial < 200; ++trial) {
    auto trace = draw_failure_trace(proc, 1000.0, rng);
    for (double t : trace) (t < 500.0 ? early : late) += 1;
  }
  EXPECT_GT(early, late * 3 / 2);
}

TEST(ArrivalProcess, WeibullProcessExpectedCountMatchesCumulativeIntensity) {
  Pcg32 rng(7, 1);
  WeibullProcess proc(0.6, 100.0);
  double total = 0.0;
  const int trials = 400;
  for (int trial = 0; trial < trials; ++trial)
    total += static_cast<double>(draw_failure_trace(proc, 1800.0, rng).size());
  EXPECT_NEAR(total / trials, proc.cumulative_intensity(1800.0), 0.3);
}

TEST(ArrivalProcess, RenewalPoissonCount) {
  Pcg32 rng(8, 1);
  RenewalProcess proc(std::make_shared<Exponential>(10.0));
  double total = 0.0;
  const int trials = 300;
  for (int trial = 0; trial < trials; ++trial)
    total += static_cast<double>(draw_failure_trace(proc, 1000.0, rng).size());
  EXPECT_NEAR(total / trials, 100.0, 3.0);
}

// ---------------------------------------------------------------------------
// Estimation.
// ---------------------------------------------------------------------------

TEST(MtbfEstimator, NoDataNoPriorIsEmpty) {
  MtbfEstimator e(4);
  EXPECT_FALSE(e.mtbf(10.0).has_value());
}

TEST(MtbfEstimator, PriorUsedBeforeFirstFailure) {
  MtbfEstimator e(4, 123.0);
  EXPECT_DOUBLE_EQ(*e.mtbf(10.0), 123.0);
}

TEST(MtbfEstimator, TracksWindowedGaps) {
  MtbfEstimator e(3);
  for (double t : {10.0, 20.0, 30.0, 40.0}) e.record_failure(t);
  // Three gaps of 10 and an open gap of 0.
  EXPECT_NEAR(*e.mtbf(40.0), 10.0, 1e-12);
  // A long quiet period pushes the estimate up (censored evidence).
  EXPECT_GT(*e.mtbf(100.0), 25.0);
}

TEST(MtbfEstimator, WindowForgetsOldGaps) {
  MtbfEstimator e(2);
  e.record_failure(0.0);
  e.record_failure(1000.0);  // gap 1000 — will be evicted
  e.record_failure(1001.0);
  e.record_failure(1002.0);
  EXPECT_NEAR(*e.mtbf(1002.0), 1.0, 1e-12);
}

TEST(WeibullMle, RecoversParameters) {
  Pcg32 rng(9, 1);
  Weibull truth(0.6, 40.0);
  std::vector<double> samples;
  for (int i = 0; i < 4000; ++i) samples.push_back(truth.sample(rng));
  WeibullFit fit = fit_weibull_mle(samples);
  EXPECT_TRUE(fit.converged);
  EXPECT_NEAR(fit.shape, 0.6, 0.05);
  EXPECT_NEAR(fit.scale, 40.0, 4.0);
  EXPECT_NEAR(fit.mean(), truth.mean(), truth.mean() * 0.1);
}

TEST(WeibullMle, RecoversIncreasingHazardToo) {
  Pcg32 rng(10, 1);
  Weibull truth(2.5, 10.0);
  std::vector<double> samples;
  for (int i = 0; i < 4000; ++i) samples.push_back(truth.sample(rng));
  WeibullFit fit = fit_weibull_mle(samples);
  EXPECT_TRUE(fit.converged);
  EXPECT_NEAR(fit.shape, 2.5, 0.2);
}

// ---------------------------------------------------------------------------
// Adaptive interval.
// ---------------------------------------------------------------------------

TEST(Interval, YoungFormula) {
  EXPECT_NEAR(young_interval(10.0, 2000.0), std::sqrt(2.0 * 10.0 * 2000.0),
              1e-12);
}

TEST(Interval, DalyApproachesYoungForLargeMtbf) {
  double d = 10.0;
  double m = 1e9;
  EXPECT_NEAR(daly_interval(d, m) / young_interval(d, m), 1.0, 1e-3);
}

TEST(Interval, DalyDegradesToMtbfWhenOverwhelmed) {
  EXPECT_DOUBLE_EQ(daly_interval(100.0, 10.0), 10.0);
}

TEST(AdaptiveController, ShrinksWithFailuresGrowsWithQuiet) {
  AdaptiveIntervalConfig cfg;
  cfg.checkpoint_cost = 1.0;
  cfg.min_interval = 0.5;
  cfg.max_interval = 1000.0;
  AdaptiveIntervalController ctl(cfg);
  EXPECT_DOUBLE_EQ(ctl.next_interval(0.0), 1000.0);  // nothing observed yet
  // Rapid failures: interval collapses.
  for (double t : {1.0, 2.0, 3.0, 4.0, 5.0}) ctl.on_failure(t);
  double busy = ctl.next_interval(5.0);
  EXPECT_LT(busy, 3.0);
  // Long quiet stretch: interval stretches back out.
  double quiet = ctl.next_interval(500.0);
  EXPECT_GT(quiet, busy * 3.0);
}

TEST(AdaptiveController, ConvergesToDalyUnderStationaryPoisson) {
  AdaptiveIntervalConfig cfg;
  cfg.checkpoint_cost = 2.0;
  cfg.min_interval = 0.1;
  cfg.max_interval = 1e6;
  cfg.window = 64;
  AdaptiveIntervalController ctl(cfg);
  Pcg32 rng(11, 1);
  Exponential gaps(300.0);
  double t = 0.0;
  for (int i = 0; i < 500; ++i) {
    t += gaps.sample(rng);
    ctl.on_failure(t);
  }
  double expected = daly_interval(2.0, 300.0);
  EXPECT_NEAR(ctl.next_interval(t), expected, expected * 0.25);
}

// ---------------------------------------------------------------------------
// Injector.
// ---------------------------------------------------------------------------

struct Victim {
  std::vector<double> data;
  std::uint64_t counter = 0;
  void pup(pup::Puper& p) {
    p | data;
    p | counter;
  }
};

TEST(Injector, FlipChangesExactlyOneBitOfUserData) {
  Victim v;
  v.data = {1.0, 2.0, 3.0};
  v.counter = 77;
  pup::Checkpoint before = pup::make_checkpoint(v);
  Pcg32 rng(12, 1);
  for (int trial = 0; trial < 200; ++trial) {
    Victim w = v;
    BitFlip flip = inject_sdc(w, rng);
    pup::Checkpoint after = pup::make_checkpoint(w);
    ASSERT_EQ(before.size(), after.size());
    int bits_changed = 0;
    for (std::size_t i = 0; i < before.size(); ++i) {
      auto diff = static_cast<unsigned>(before.bytes()[i] ^ after.bytes()[i]);
      bits_changed += std::popcount(diff);
    }
    EXPECT_EQ(bits_changed, 1) << "trial " << trial;
    EXPECT_LT(flip.byte_offset, before.size());
  }
}

TEST(Injector, PayloadBytesExcludesHeaders) {
  Victim v;
  v.data = {1.0, 2.0, 3.0};
  pup::Checkpoint c = pup::make_checkpoint(v);
  // Flippable payload: 24 B of doubles + the 8 B counter = 32. The
  // vector's length record (Tag::Size) is framework structure, excluded.
  EXPECT_EQ(payload_bytes(c.bytes()), 32u);
  EXPECT_GT(c.size(), 32u);
}

TEST(Injector, RejectsEmptyStream) {
  Pcg32 rng(13, 1);
  std::vector<std::byte> empty;
  EXPECT_THROW(flip_random_payload_bit(empty, rng), RequireError);
}

}  // namespace
}  // namespace acr::failure
