// Direct tests for the common substrate: RNG, statistics, table printer,
// logging, and requirement checking.
#include <gtest/gtest.h>

#include <set>

#include "common/logging.h"
#include "common/require.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"

namespace acr {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Pcg32 a(42, 7), b(42, 7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, StreamsAreIndependent) {
  Pcg32 a(42, 1), b(42, 2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, BoundedIsInRangeAndRoughlyUniform) {
  Pcg32 rng(3, 3);
  std::array<int, 7> counts{};
  const int n = 70000;
  for (int i = 0; i < n; ++i) {
    std::uint32_t v = rng.bounded(7);
    ASSERT_LT(v, 7u);
    ++counts[v];
  }
  for (int c : counts) EXPECT_NEAR(c, n / 7, n / 7 / 10);
  EXPECT_EQ(rng.bounded(1), 0u);
  EXPECT_EQ(rng.bounded(0), 0u);
}

TEST(Rng, UniformIsInHalfOpenUnitInterval) {
  Pcg32 rng(9, 1);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, FactoryProducesDistinctStreams) {
  RngFactory factory(1234);
  Pcg32 a = factory.make();
  Pcg32 b = factory.make();
  std::set<std::uint32_t> seen;
  bool identical = true;
  for (int i = 0; i < 32; ++i) identical &= (a.next() == b.next());
  EXPECT_FALSE(identical);
}

TEST(RunningStats, MatchesClosedForms) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyAndSingleAreSafe) {
  RunningStats s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(Percentile, InterpolatesOrderStatistics) {
  std::vector<double> v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 25.0);
  EXPECT_THROW(percentile({}, 0.5), RequireError);
  EXPECT_THROW(percentile(v, 1.5), RequireError);
}

TEST(Histogram, BinsAndClamps) {
  Histogram h(0.0, 10.0, 5);
  for (double x : {-1.0, 0.5, 3.0, 9.9, 42.0}) h.add(x);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);  // -1 clamped + 0.5
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(4), 2u);  // 9.9 + 42 clamped
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
}

TEST(Table, RendersAlignedColumns) {
  TablePrinter t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  std::string out = t.render();
  EXPECT_NE(out.find("name   value"), std::string::npos);
  EXPECT_NE(out.find("alpha  1"), std::string::npos);
  EXPECT_NE(out.find("b      22222"), std::string::npos);
  EXPECT_THROW(t.add_row({"only-one"}), RequireError);
}

TEST(Table, FmtUsesSignificantDigits) {
  EXPECT_EQ(TablePrinter::fmt(0.123456, 3), "0.123");
  EXPECT_EQ(TablePrinter::fmt(12345.6, 3), "1.23e+04");
}

TEST(Require, ThrowsWithContext) {
  try {
    ACR_REQUIRE(1 == 2, "math is broken");
    FAIL() << "should have thrown";
  } catch (const RequireError& e) {
    std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("math is broken"), std::string::npos);
  }
}

TEST(Logging, LevelGatesOutput) {
  // log_line is thread-safe and level-gated; exercise the control surface.
  LogLevel before = log_level();
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
  log_info("test") << "this must be suppressed";
  log_error("test") << "";  // emitted (empty) — must not crash
  set_log_level(before);
}

}  // namespace
}  // namespace acr
