// ReliableTransport and NetFaultInjector unit tests.
//
// The transport is exercised against a scripted wire built on the real
// rt::Engine: the harness's hooks decide per-frame whether a transmission
// reaches the far end, with what extra latency, and whether acks survive
// the return trip. This mirrors how rt::Cluster wires the transport in,
// minus payloads — the transport itself never sees message bytes.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "failure/net_faults.h"
#include "net/reliable.h"
#include "rt/engine.h"

namespace acr::net {
namespace {

using Seq = ReliableTransport::Seq;

/// Single-link scripted wire. Frames flow src=0 -> dst=1.
struct Harness {
  rt::Engine engine;
  ReliableConfig cfg;
  LinkKey link{0, 1};
  double latency = 1e-4;

  /// Scripted loss: return true to eat this (re)transmission.
  std::function<bool(Seq, int attempt)> lose_frame = [](Seq, int) {
    return false;
  };
  /// Scripted extra flight time per (seq, attempt).
  std::function<double(Seq, int attempt)> extra_delay = [](Seq, int) {
    return 0.0;
  };
  bool lose_acks = false;
  /// Deliver every arriving frame twice (wire-level duplication).
  bool duplicate_arrivals = false;

  std::vector<Seq> delivered;
  std::vector<Seq> released;
  std::vector<Seq> gave_up;
  std::vector<double> transmit_times;  ///< every (re)transmission instant
  std::map<Seq, int> attempts_seen;

  ReliableTransport transport;

  Harness() : transport(cfg, hooks()) {}
  explicit Harness(const ReliableConfig& c) : cfg(c), transport(cfg, hooks()) {}

  ReliableTransport::Hooks hooks() {
    ReliableTransport::Hooks h;
    h.schedule = [this](double delay, std::function<void()> fn) {
      return engine.schedule_after(delay, std::move(fn));
    };
    h.cancel = [this](ReliableTransport::TimerId id) { engine.cancel(id); };
    h.transmit = [this](LinkKey l, Seq seq, int attempt) {
      transmit_times.push_back(engine.now());
      attempts_seen[seq] = attempt;
      if (lose_frame(seq, attempt)) return;
      // Generation and window base are stamped at transmit time, exactly as
      // the cluster does.
      std::uint64_t gen = transport.generation(l);
      Seq base = transport.window_base(l);
      double flight = latency + extra_delay(seq, attempt);
      int copies = duplicate_arrivals ? 2 : 1;
      for (int c = 0; c < copies; ++c)
        engine.schedule_after(flight + c * latency, [this, l, seq, base, gen] {
          transport.on_data_frame(l, seq, base, gen);
        });
    };
    h.send_ack = [this](LinkKey l, Seq seq) {
      if (lose_acks) return;
      std::uint64_t gen = transport.generation(l);
      engine.schedule_after(latency, [this, l, seq, gen] {
        transport.on_ack_frame(l, seq, gen);
      });
    };
    h.deliver = [this](LinkKey, Seq seq) { delivered.push_back(seq); };
    h.give_up = [this](LinkKey, Seq seq) { gave_up.push_back(seq); };
    h.release = [this](LinkKey, Seq seq) { released.push_back(seq); };
    return h;
  }
};

TEST(ReliableTransport, CleanWireDeliversInOrder) {
  Harness h;
  for (int i = 0; i < 10; ++i) h.transport.send(h.link, h.latency);
  h.engine.run();
  ASSERT_EQ(h.delivered.size(), 10u);
  for (Seq s = 1; s <= 10; ++s) EXPECT_EQ(h.delivered[s - 1], s);
  EXPECT_EQ(h.transport.in_flight(), 0u);
  EXPECT_EQ(h.released.size(), 10u);
  EXPECT_TRUE(h.gave_up.empty());
  EXPECT_EQ(h.transport.stats().retransmits, 0u);
}

TEST(ReliableTransport, RetransmitsRecoverLostFrames) {
  Harness h;
  // First attempt of every third frame is eaten; retransmits survive.
  h.lose_frame = [](Seq seq, int attempt) {
    return attempt == 0 && seq % 3 == 0;
  };
  for (int i = 0; i < 12; ++i) h.transport.send(h.link, h.latency);
  h.engine.run();
  ASSERT_EQ(h.delivered.size(), 12u);
  for (Seq s = 1; s <= 12; ++s) EXPECT_EQ(h.delivered[s - 1], s);
  EXPECT_EQ(h.transport.stats().retransmits, 4u);  // seqs 3, 6, 9, 12
  EXPECT_EQ(h.transport.in_flight(), 0u);
}

TEST(ReliableTransport, ReorderedFramesDeliverInOrder) {
  Harness h;
  // Odd frames take a scenic route: they arrive after later even frames.
  h.extra_delay = [&](Seq seq, int) {
    return (seq % 2 == 1) ? 20 * h.latency : 0.0;
  };
  for (int i = 0; i < 10; ++i) h.transport.send(h.link, h.latency);
  h.engine.run();
  ASSERT_EQ(h.delivered.size(), 10u);
  for (Seq s = 1; s <= 10; ++s) EXPECT_EQ(h.delivered[s - 1], s);
}

TEST(ReliableTransport, DuplicatesSuppressedDeliveredOnce) {
  Harness h;
  h.duplicate_arrivals = true;
  for (int i = 0; i < 8; ++i) h.transport.send(h.link, h.latency);
  h.engine.run();
  ASSERT_EQ(h.delivered.size(), 8u);
  for (Seq s = 1; s <= 8; ++s) EXPECT_EQ(h.delivered[s - 1], s);
  EXPECT_GT(h.transport.stats().dup_frames, 0u);
}

TEST(ReliableTransport, LostAcksCauseDupFramesNotDupDelivery) {
  Harness h;
  h.lose_acks = true;
  h.transport.send(h.link, h.latency);
  // Let a few retransmit rounds fire, then let acks through.
  h.engine.run_until(3 * h.cfg.base_timeout);
  h.lose_acks = false;
  h.engine.run();
  ASSERT_EQ(h.delivered.size(), 1u);
  EXPECT_GT(h.transport.stats().dup_frames, 0u);
  EXPECT_EQ(h.transport.in_flight(), 0u);
}

TEST(ReliableTransport, GiveUpAfterRetryBudgetReleasesPayload) {
  ReliableConfig cfg;
  cfg.retry_budget = 4;
  Harness h(cfg);
  h.lose_frame = [](Seq, int) { return true; };  // black-hole link
  h.transport.send(h.link, h.latency);
  h.engine.run();
  ASSERT_EQ(h.gave_up.size(), 1u);
  EXPECT_EQ(h.gave_up[0], 1u);
  ASSERT_EQ(h.released.size(), 1u);
  EXPECT_EQ(h.released[0], 1u);
  // First transmission + retry_budget retransmits.
  EXPECT_EQ(h.transmit_times.size(), 1u + 4u);
  EXPECT_EQ(h.transport.in_flight(), 0u);
  EXPECT_TRUE(h.delivered.empty());
}

TEST(ReliableTransport, BackoffGrowsGeometricallyAndCaps) {
  ReliableConfig cfg;
  cfg.retry_budget = 8;
  cfg.base_timeout = 1e-3;
  cfg.backoff = 2.0;
  cfg.max_timeout = 4e-3;
  Harness h(cfg);
  h.lose_frame = [](Seq, int) { return true; };
  h.transport.send(h.link, h.latency);
  h.engine.run();
  ASSERT_EQ(h.transmit_times.size(), 9u);
  std::vector<double> gaps;
  for (std::size_t i = 1; i < h.transmit_times.size(); ++i)
    gaps.push_back(h.transmit_times[i] - h.transmit_times[i - 1]);
  // Non-decreasing, doubling early, clamped at max_timeout late.
  EXPECT_NEAR(gaps[0], 1e-3, 1e-9);
  EXPECT_NEAR(gaps[1], 2e-3, 1e-9);
  EXPECT_NEAR(gaps[2], 4e-3, 1e-9);
  for (std::size_t i = 3; i < gaps.size(); ++i)
    EXPECT_NEAR(gaps[i], cfg.max_timeout, 1e-9) << "gap " << i;
}

TEST(ReliableTransport, TimeoutFlooredByFrameLatency) {
  Harness h;
  // A bulk frame in flight for 10x base_timeout must not be retransmitted
  // before it can possibly have been acked.
  double slow = 10 * h.cfg.base_timeout;
  h.transport.send(h.link, slow);
  h.engine.run();
  EXPECT_EQ(h.transport.stats().retransmits, 0u);
  ASSERT_EQ(h.delivered.size(), 1u);
}

TEST(ReliableTransport, WindowBaseHealsAbandonedHole) {
  ReliableConfig cfg;
  cfg.retry_budget = 2;
  Harness h(cfg);
  // Frame 1 is black-holed; 2 and 3 arrive and are buffered behind it.
  h.lose_frame = [](Seq seq, int) { return seq == 1; };
  h.transport.send(h.link, h.latency);
  h.transport.send(h.link, h.latency);
  h.transport.send(h.link, h.latency);
  h.engine.run();
  // Sender gave up on 1; 2 and 3 were acked while buffered.
  ASSERT_EQ(h.gave_up.size(), 1u);
  EXPECT_EQ(h.gave_up[0], 1u);
  EXPECT_TRUE(h.delivered.empty());  // still holed at the receiver
  // The next frame carries an advanced window base; the receiver skips the
  // abandoned hole and flushes the buffered run.
  h.lose_frame = [](Seq, int) { return false; };
  h.transport.send(h.link, h.latency);
  h.engine.run();
  ASSERT_EQ(h.delivered.size(), 3u);
  EXPECT_EQ(h.delivered[0], 2u);
  EXPECT_EQ(h.delivered[1], 3u);
  EXPECT_EQ(h.delivered[2], 4u);
  EXPECT_EQ(h.transport.in_flight(), 0u);
}

TEST(ReliableTransport, FarAheadFramesDroppedUnacked) {
  ReliableConfig cfg;
  cfg.window = 4;
  Harness h(cfg);
  // Hold frame 1 hostage long enough that 2..8 arrive first.
  h.extra_delay = [&](Seq seq, int attempt) {
    return (seq == 1 && attempt == 0) ? 50 * h.latency : 0.0;
  };
  for (int i = 0; i < 8; ++i) h.transport.send(h.link, h.latency);
  h.engine.run();
  // Everything is eventually delivered in order (frames beyond the window
  // were dropped unacked, then retransmitted once the base advanced).
  ASSERT_EQ(h.delivered.size(), 8u);
  for (Seq s = 1; s <= 8; ++s) EXPECT_EQ(h.delivered[s - 1], s);
  EXPECT_GT(h.transport.stats().retransmits, 0u);
}

TEST(ReliableTransport, ResetEndpointReleasesWithoutEscalation) {
  Harness h;
  h.lose_frame = [](Seq, int) { return true; };  // receiver is dead
  h.transport.send(h.link, h.latency);
  h.transport.send(h.link, h.latency);
  h.engine.run_until(h.cfg.base_timeout / 2);
  EXPECT_EQ(h.transport.in_flight(), 2u);
  h.transport.reset_endpoint(1);
  EXPECT_EQ(h.transport.in_flight(), 0u);
  EXPECT_EQ(h.released.size(), 2u);
  EXPECT_TRUE(h.gave_up.empty());  // endpoint death is not a link failure
  h.engine.run();                  // pending retransmit timers must be inert
  EXPECT_TRUE(h.gave_up.empty());
}

TEST(ReliableTransport, StaleGenerationFramesAreIgnored) {
  Harness h;
  // Frame 1 is in flight when the receiving endpoint is reset (spare
  // promotion): its stamped generation is now stale.
  h.extra_delay = [&](Seq, int attempt) {
    return attempt == 0 ? 5 * h.latency : 0.0;
  };
  h.transport.send(h.link, h.latency);
  h.engine.run_until(h.latency);  // frame is on the wire
  h.transport.reset_endpoint(1);
  std::uint64_t stale_before = h.transport.stats().stale_generation;
  h.engine.run_until(10 * h.latency);
  EXPECT_GT(h.transport.stats().stale_generation, stale_before);
  EXPECT_TRUE(h.delivered.empty());
  // The new incarnation's seq 1 is a fresh conversation.
  h.extra_delay = [](Seq, int) { return 0.0; };
  Seq s = h.transport.send(h.link, h.latency);
  EXPECT_EQ(s, 1u);
  h.engine.run();
  ASSERT_EQ(h.delivered.size(), 1u);
  EXPECT_EQ(h.delivered[0], 1u);
}

// --- NetFaultInjector -------------------------------------------------------

TEST(NetFaultInjector, DisabledInjectorPassesEverything) {
  failure::NetFaultConfig cfg;  // all rates zero
  failure::NetFaultInjector inj(cfg, 42);
  for (int i = 0; i < 100; ++i) {
    failure::NetFaultDecision d = inj.decide(0, 1, 64);
    EXPECT_FALSE(d.drop);
    EXPECT_FALSE(d.duplicate);
    EXPECT_FALSE(d.corrupt);
    EXPECT_EQ(d.extra_delay, 0.0);
  }
  EXPECT_EQ(inj.counters().frames, 100u);
  EXPECT_EQ(inj.counters().drops, 0u);
}

TEST(NetFaultInjector, SameSeedSameSchedule) {
  failure::NetFaultConfig cfg;
  cfg.drop_rate = 0.2;
  cfg.dup_rate = 0.1;
  cfg.reorder_rate = 0.3;
  cfg.corrupt_rate = 0.1;
  failure::NetFaultInjector a(cfg, 7), b(cfg, 7);
  for (int i = 0; i < 500; ++i) {
    int src = i % 5, dst = (i * 3) % 7;
    failure::NetFaultDecision da = a.decide(src, dst, 128);
    failure::NetFaultDecision db = b.decide(src, dst, 128);
    EXPECT_EQ(da.drop, db.drop);
    EXPECT_EQ(da.duplicate, db.duplicate);
    EXPECT_EQ(da.corrupt, db.corrupt);
    EXPECT_EQ(da.corrupt_byte, db.corrupt_byte);
    EXPECT_EQ(da.corrupt_bit, db.corrupt_bit);
    EXPECT_EQ(da.extra_delay, db.extra_delay);
  }
}

TEST(NetFaultInjector, PerLinkStreamsAreIndependent) {
  failure::NetFaultConfig cfg;
  cfg.drop_rate = 0.5;
  failure::NetFaultInjector a(cfg, 99), b(cfg, 99);
  // Interleaving decisions for other links must not perturb link (0,1)'s
  // schedule: each link draws from its own stream.
  std::vector<bool> plain, interleaved;
  for (int i = 0; i < 200; ++i) plain.push_back(a.decide(0, 1, 64).drop);
  for (int i = 0; i < 200; ++i) {
    b.decide(2, 3, 64);
    interleaved.push_back(b.decide(0, 1, 64).drop);
    b.decide(4, 5, 64);
  }
  EXPECT_EQ(plain, interleaved);
}

TEST(NetFaultInjector, RatesApproximatelyHonored) {
  failure::NetFaultConfig cfg;
  cfg.drop_rate = 0.3;
  cfg.dup_rate = 0.2;
  failure::NetFaultInjector inj(cfg, 1234);
  const int kFrames = 20000;
  for (int i = 0; i < kFrames; ++i) inj.decide(1, 2, 64);
  double drop_frac = double(inj.counters().drops) / kFrames;
  EXPECT_NEAR(drop_frac, 0.3, 0.02);
  // Duplicates only counted for non-dropped frames.
  double dup_frac = double(inj.counters().duplicates) / kFrames;
  EXPECT_NEAR(dup_frac, 0.2 * 0.7, 0.02);
}

TEST(NetFaultInjector, CorruptionTargetsLieInsidePayload) {
  failure::NetFaultConfig cfg;
  cfg.corrupt_rate = 1.0;
  failure::NetFaultInjector inj(cfg, 5);
  for (int i = 0; i < 200; ++i) {
    std::size_t bytes = 1 + static_cast<std::size_t>(i) % 97;
    failure::NetFaultDecision d = inj.decide(0, 1, bytes);
    ASSERT_TRUE(d.corrupt);
    EXPECT_LT(d.corrupt_byte, bytes);
    EXPECT_LT(d.corrupt_bit, 8);
  }
}

}  // namespace
}  // namespace acr::net
